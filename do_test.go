package hcd_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"hcd"
)

// TestDoMultiRHS: one request, several right-hand sides, one preconditioner
// build shared across them.
func TestDoMultiRHS(t *testing.T) {
	g := hcd.Grid2D(12, 12, nil, 1)
	rng := rand.New(rand.NewSource(3))
	B := make([][]float64, 3)
	for i := range B {
		B[i] = meanFree(rng, g.N())
	}
	resp, err := hcd.Do(context.Background(), g, hcd.SolveRequest{B: B})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(resp.Results))
	}
	for i, res := range resp.Results {
		if !res.Converged {
			t.Errorf("rhs %d: outcome %s", i, res.Outcome)
		}
		if r := residual(g, res.X, B[i]); r > 1e-5 {
			t.Errorf("rhs %d: residual %v", i, r)
		}
	}
}

// TestDoMatchesWrapper: SolvePCGCtx is a thin wrapper over Do — identical
// request, identical iteration count.
func TestDoMatchesWrapper(t *testing.T) {
	g := hcd.Grid2D(10, 10, nil, 1)
	rng := rand.New(rand.NewSource(9))
	b := meanFree(rng, g.N())
	m := hcd.JacobiPreconditioner(g)
	opt := hcd.DefaultSolveOptions()

	direct, err := hcd.SolvePCGCtx(context.Background(), g, b, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hcd.Do(context.Background(), g, hcd.SolveRequest{
		B: [][]float64{b}, Method: hcd.SolveMethodPCG, M: m, Options: opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Results[0].Iterations; got != direct.Iterations {
		t.Fatalf("Do iterations %d != SolvePCGCtx iterations %d", got, direct.Iterations)
	}
}

// TestDoEngineDetaches: results from the engine path must survive engine
// reuse — Do copies them out of the engine's aliased buffers.
func TestDoEngineDetaches(t *testing.T) {
	g := hcd.Grid2D(10, 10, nil, 1)
	rng := rand.New(rand.NewSource(4))
	b1, b2 := meanFree(rng, g.N()), meanFree(rng, g.N())
	eng, err := hcd.NewEngine(g, hcd.JacobiPreconditioner(g), hcd.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	resp1, err := hcd.Do(context.Background(), g, hcd.SolveRequest{B: [][]float64{b1}, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	x1 := append([]float64(nil), resp1.Results[0].X...)
	if _, err = hcd.Do(context.Background(), g, hcd.SolveRequest{B: [][]float64{b2}, Engine: eng}); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != resp1.Results[0].X[i] {
			t.Fatalf("engine reuse clobbered an earlier result at %d", i)
		}
	}
}

// TestDoPrecondSpecs: every named preconditioner kind builds and converges
// through the spec path.
func TestDoPrecondSpecs(t *testing.T) {
	g := hcd.Grid2D(10, 10, nil, 1)
	rng := rand.New(rand.NewSource(6))
	b := meanFree(rng, g.N())
	for _, kind := range []hcd.PrecondKind{
		hcd.PrecondNone, hcd.PrecondJacobi, hcd.PrecondSteiner,
		hcd.PrecondTree, hcd.PrecondSubgraph, hcd.PrecondHierarchy,
	} {
		resp, err := hcd.Do(context.Background(), g, hcd.SolveRequest{
			B: [][]float64{b}, Precond: hcd.PrecondSpec{Kind: kind},
		})
		if err != nil {
			t.Fatalf("kind %s: %v", kind, err)
		}
		if !resp.Results[0].Converged {
			t.Errorf("kind %s: outcome %s", kind, resp.Results[0].Outcome)
		}
	}
	if _, err := hcd.Do(context.Background(), g, hcd.SolveRequest{
		B: [][]float64{b}, Precond: hcd.PrecondSpec{Kind: "bogus"},
	}); !errors.Is(err, hcd.ErrInvalidInput) {
		t.Fatalf("bogus kind: %v, want ErrInvalidInput", err)
	}
}

// TestSolvePCGDimensionError: the redesigned SolvePCG returns a wrapped
// ErrBadDimension instead of panicking.
func TestSolvePCGDimensionError(t *testing.T) {
	g := hcd.Grid2D(6, 6, nil, 1)
	_, err := hcd.SolvePCG(g, make([]float64, g.N()+1), hcd.JacobiPreconditioner(g), hcd.DefaultSolveOptions())
	if !errors.Is(err, hcd.ErrBadDimension) {
		t.Fatalf("got %v, want ErrBadDimension", err)
	}
}

// TestDoValidation: empty requests fail with ErrInvalidInput.
func TestDoValidation(t *testing.T) {
	g := hcd.Grid2D(4, 4, nil, 1)
	if _, err := hcd.Do(context.Background(), g, hcd.SolveRequest{}); !errors.Is(err, hcd.ErrInvalidInput) {
		t.Fatalf("no RHS: %v, want ErrInvalidInput", err)
	}
	if _, err := hcd.Do(context.Background(), nil, hcd.SolveRequest{B: [][]float64{{1}}}); !errors.Is(err, hcd.ErrInvalidInput) {
		t.Fatalf("nil graph: %v, want ErrInvalidInput", err)
	}
	if _, err := hcd.Do(context.Background(), g, hcd.SolveRequest{
		B: [][]float64{make([]float64, g.N())}, Method: "bogus",
	}); !errors.Is(err, hcd.ErrInvalidInput) {
		t.Fatalf("bogus method: %v, want ErrInvalidInput", err)
	}
}

// TestDoChebyshevMultiRHS: the Chebyshev method probes once on the first
// right-hand side and reuses the spectrum bracket for the rest.
func TestDoChebyshevMultiRHS(t *testing.T) {
	g := hcd.Grid2D(10, 10, nil, 1)
	rng := rand.New(rand.NewSource(8))
	B := [][]float64{meanFree(rng, g.N()), meanFree(rng, g.N())}
	resp, err := hcd.Do(context.Background(), g, hcd.SolveRequest{
		B: B, Method: hcd.SolveMethodChebyshev,
		M:         hcd.JacobiPreconditioner(g),
		Chebyshev: hcd.DefaultChebyshevOptions(300),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lmin <= 0 || resp.Lmax <= resp.Lmin {
		t.Fatalf("bad spectrum estimate [%v, %v]", resp.Lmin, resp.Lmax)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(resp.Results))
	}
	for i, res := range resp.Results {
		if r := residual(g, res.X, B[i]); r > 1e-4 {
			t.Errorf("rhs %d: residual %v", i, r)
		}
	}
}
