// Package hcd is a Go implementation of Koutis & Miller, "Graph partitioning
// into isolated, high conductance clusters: theory, computation and
// applications to preconditioning" (SPAA 2008).
//
// It decomposes weighted graphs into vertex-disjoint clusters whose closures
// (induced subgraph + one stub per boundary edge) all have conductance ≥ φ
// ([φ, ρ] decompositions), and uses the decompositions to build Steiner-graph
// preconditioners for graph Laplacian systems — including the recursive,
// multilevel variant that prefigures combinatorial multigrid.
//
// Quick start:
//
//	g, _ := hcd.NewGraph(n, edges)
//	r, _ := hcd.DecomposeCtx(ctx, g, hcd.DefaultDecomposeOptions(hcd.MethodFixedDegree))
//	rep := hcd.Evaluate(r.D)                     // measured φ, ρ, γ
//	p, _ := hcd.NewSteinerPreconditioner(r.D)    // Section 3 preconditioner
//	res, _ := hcd.SolvePCGCtx(ctx, g, b, p, hcd.DefaultSolveOptions())
//
// Every decomposition method is also reachable through the unified
// context-aware pipeline, which reports per-stage build metrics and honors
// cancellation:
//
//	r, _ := hcd.DecomposeCtx(ctx, g, hcd.DefaultDecomposeOptions(hcd.MethodFixedDegree))
//	_, _, _ = r.D, r.Report, r.Metrics
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package hcd

import (
	"context"

	"hcd/internal/decomp"
	"hcd/internal/graph"
	"hcd/internal/laminar"
	"hcd/internal/sparsify"
	"hcd/internal/spectralcut"
)

// Edge is an undirected weighted edge.
type Edge = graph.Edge

// Graph is an immutable weighted undirected graph in CSR form.
type Graph = graph.Graph

// NewGraph builds a graph on n vertices from an edge list; parallel edges
// merge by weight summation, self-loops and non-positive weights error.
// Negative vertex counts and out-of-range endpoints return errors wrapping
// ErrBadDimension.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.NewFromEdges(n, edges)
}

// Decomposition is a partition of a graph's vertices into clusters.
type Decomposition = decomp.Decomposition

// Report summarizes decomposition quality (φ, ρ, γ, sizes).
type Report = decomp.Report

// MaxExactConductance is the largest cluster core (vertex count, stubs
// excluded) for which Evaluate certifies closure conductance exactly. The
// stub-aware certifier collapses boundary stubs into anchor volumes in
// closed form, so the limit applies to the cluster size — a 4-vertex cluster
// is certified in 2³ enumeration steps no matter how many boundary edges
// its closure has.
const MaxExactConductance = graph.MaxExactConductance

// CertStats counts exact-certification work (cores enumerated, stubs
// collapsed, core side-assignments visited, sweep-bound fallbacks); it is
// reported in Report.Cert and BuildMetrics.Cert.
type CertStats = graph.CertStats

// DecomposeTree computes the Theorem 2.1 decomposition of a tree or forest:
// ρ ≥ 6/5 and every closure conductance ≥ 1/3 (measured ≥ 1/2 on typical
// weights; see EXPERIMENTS.md E3 on the constant).
//
// Deprecated: use DecomposeCtx with MethodTree, which adds cancellation and
// per-stage build metrics.
func DecomposeTree(g *Graph) (*Decomposition, error) {
	res, err := DecomposeCtx(context.Background(), g,
		DecomposeOptions{Method: MethodTree, SkipReport: true})
	if err != nil {
		return nil, err
	}
	return res.D, nil
}

// DecomposeTreeParallel is DecomposeTree with the per-bridge case analysis
// fanned out across cores; results are identical to DecomposeTree.
//
// Deprecated: use DecomposeCtx with MethodTree and Parallel: true.
func DecomposeTreeParallel(g *Graph) (*Decomposition, error) {
	res, err := DecomposeCtx(context.Background(), g,
		DecomposeOptions{Method: MethodTree, Parallel: true, SkipReport: true})
	if err != nil {
		return nil, err
	}
	return res.D, nil
}

// ClusterStats describes one cluster (size, volume, boundary, conductance).
type ClusterStats = decomp.ClusterStats

// Details returns per-cluster statistics sorted by ascending closure
// conductance — the problematic clusters first.
func Details(d *Decomposition) []ClusterStats {
	return decomp.Details(d, graph.MaxExactConductance)
}

// MaxGammaViolations returns the largest per-cluster count of vertices
// violating cap(v, C−v) ≥ γ·vol(v); Section 2 proves it is at most 1 when γ
// is the decomposition's closure conductance.
func MaxGammaViolations(d *Decomposition, gamma float64) int {
	return decomp.MaxGammaViolations(d, gamma)
}

// AgreementReport holds the external clustering metrics of one comparison:
// purity of a against b and the Rand index over vertex pairs.
type AgreementReport = decomp.AgreementReport

// Agreement scores a cluster assignment against another (e.g. planted
// ground truth), returning the metrics as a single report struct.
func Agreement(a, b []int) (AgreementReport, error) {
	return decomp.Agreement(a, b)
}

// MergeSingletons greedily folds singleton clusters into their heaviest
// neighbor cluster whenever the merged closure's conductance stays ≥ minPhi
// (certified exactly). It improves ρ at no conductance cost below the floor
// and returns the new decomposition with the number of merges.
func MergeSingletons(d *Decomposition, minPhi float64) (*Decomposition, int) {
	return decomp.MergeSingletons(d, minPhi, graph.MaxExactConductance)
}

// DecomposeFixedDegree computes the Section 3.1 clustering: perturb, keep
// per-vertex heaviest edges, split the forest into clusters of ≈ sizeCap.
// Every cluster has ≥ 2 vertices, so ρ ≥ 2.
//
// Deprecated: use DecomposeCtx with MethodFixedDegree.
func DecomposeFixedDegree(g *Graph, sizeCap int, seed int64) (*Decomposition, error) {
	res, err := DecomposeCtx(context.Background(), g,
		DecomposeOptions{Method: MethodFixedDegree, SizeCap: sizeCap, Seed: seed, SkipReport: true})
	if err != nil {
		return nil, err
	}
	return res.D, nil
}

// BaseTree selects the spanning tree for the sparse-subgraph pipelines.
type BaseTree = sparsify.BaseTree

// Base tree choices for DecomposePlanar / DecomposeMinorFree.
const (
	MaxWeightTree  = sparsify.MaxWeightTree
	LowStretchTree = sparsify.LowStretchTree
)

// PlanarOptions configures the Theorem 2.2 pipeline.
type PlanarOptions struct {
	Base BaseTree
	// ExtraFraction controls the off-tree edges kept in the subgraph B
	// (fraction of n); the paper's "constant fraction".
	ExtraFraction float64
	Seed          int64
}

// DefaultPlanarOptions uses a max-weight base tree with n/4 extra edges.
func DefaultPlanarOptions() PlanarOptions {
	return PlanarOptions{Base: MaxWeightTree, ExtraFraction: 0.25, Seed: 1}
}

// PlanarResult carries the Theorem 2.2 pipeline outputs.
type PlanarResult struct {
	D *Decomposition // decomposition of the ORIGINAL graph
	B *Graph         // sparse subgraph the decomposition was computed on
	// CoreSize and CutEdges describe the strip/cut phase (|W| and |C|).
	CoreSize, CutEdges int
	// AvgStretch is the average edge stretch over the base tree.
	AvgStretch float64
}

// DecomposePlanar runs the full Theorem 2.2 pipeline on a connected graph:
// sparsify to a tree-plus-extras subgraph B, strip/cut/tree-decompose B, and
// rebind the clustering to g. It applies to any graph; the planarity (or
// minor-freeness, Theorem 2.3, via LowStretchTree) only affects the
// provable constants.
//
// Deprecated: use DecomposeCtx with MethodPlanar.
func DecomposePlanar(g *Graph, opt PlanarOptions) (*PlanarResult, error) {
	res, err := DecomposeCtx(context.Background(), g, DecomposeOptions{
		Method: MethodPlanar, Base: opt.Base,
		ExtraFraction: opt.ExtraFraction, Seed: opt.Seed, SkipReport: true,
	})
	if err != nil {
		return nil, err
	}
	return &PlanarResult{
		D: res.D, B: res.B,
		CoreSize: res.CoreSize, CutEdges: res.CutEdges,
		AvgStretch: res.AvgStretch,
	}, nil
}

// DecomposeMinorFree runs the Theorem 2.3 variant: the same pipeline on a
// low-stretch base tree.
//
// Deprecated: use DecomposeCtx with MethodMinorFree.
func DecomposeMinorFree(g *Graph, seed int64) (*PlanarResult, error) {
	opt := DefaultDecomposeOptions(MethodMinorFree)
	opt.Seed = seed
	opt.SkipReport = true
	res, err := DecomposeCtx(context.Background(), g, opt)
	if err != nil {
		return nil, err
	}
	return &PlanarResult{
		D: res.D, B: res.B,
		CoreSize: res.CoreSize, CutEdges: res.CutEdges,
		AvgStretch: res.AvgStretch,
	}, nil
}

// Evaluate measures a decomposition: minimum closure conductance φ (exact
// for clusters of up to MaxExactConductance core vertices, however many
// stubs their closures carry), reduction factor ρ, per-vertex retention γ,
// size statistics, and certification work counters.
func Evaluate(d *Decomposition) Report {
	return decomp.Evaluate(d, graph.MaxExactConductance)
}

// Validate checks the partition invariants (coverage, range, connectivity).
func Validate(d *Decomposition) error { return d.Validate() }

// SpectralCutOptions configures the top-down recursive spectral baseline.
type SpectralCutOptions = spectralcut.Options

// SpectralCutStats reports its work profile (splits, eigensolves).
type SpectralCutStats = spectralcut.Stats

// DefaultSpectralCutOptions targets conductance 0.1.
func DefaultSpectralCutOptions() SpectralCutOptions { return spectralcut.DefaultOptions() }

// DecomposeSpectral runs the top-down recursive two-way spectral
// partitioning baseline (Kannan–Vempala–Vetta style) the paper's
// introduction contrasts with its bottom-up constructions: an eigensolve
// per split and no reduction-factor guarantee, but direct control of the
// conductance target.
//
// Deprecated: use DecomposeCtx with MethodSpectral.
func DecomposeSpectral(g *Graph, opt SpectralCutOptions) (*Decomposition, SpectralCutStats, error) {
	res, err := DecomposeCtx(context.Background(), g,
		DecomposeOptions{Method: MethodSpectral, Spectral: opt, SkipReport: true})
	if err != nil {
		return nil, SpectralCutStats{}, err
	}
	return res.D, res.SpectralStats, nil
}

// LaminarTree is a laminar hierarchy of decompositions with composition,
// refinement checks, and per-level quality reports.
type LaminarTree = laminar.Laminar

// BuildLaminar clusters g recursively (Section 3.1 at every level) until
// the quotient has at most coarse vertices, returning the full hierarchy.
func BuildLaminar(g *Graph, sizeCap, coarse int, seed int64) (*LaminarTree, error) {
	return laminar.Build(g, sizeCap, coarse, seed)
}

// BuildLaminarCtx is BuildLaminar under a context; a cancelled build returns
// an error wrapping ErrBuildCancelled and the context's error.
func BuildLaminarCtx(ctx context.Context, g *Graph, sizeCap, coarse int, seed int64) (*LaminarTree, error) {
	return laminar.BuildCtx(ctx, g, sizeCap, coarse, seed)
}
