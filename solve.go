package hcd

// The solve engine: context-aware entry points, reusable solve sessions,
// termination outcomes, and per-solve metrics. All solve paths (Solve,
// SolvePCG, SolveCtx, SolvePCGCtx, Engine.Solve, SolveChebyshev*) converge
// on one PCG/Chebyshev implementation in internal/solver, whose level-1
// kernels (dot, norm, axpy, mean projection) and Laplacian matvec run across
// cores with a serial fallback below a grain-size threshold.

import (
	"context"

	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/solver"
)

// Sentinel errors for the construction and solve paths. Callers should test
// with errors.Is instead of matching message strings.
var (
	// ErrDisconnected: the operation requires a connected graph
	// (e.g. NewResistanceComputer).
	ErrDisconnected = graph.ErrDisconnected
	// ErrBadDimension: vertex counts, edge endpoints, or vector lengths
	// disagree with the graph/operator dimension (NewGraph, SolvePCGCtx,
	// engine construction).
	ErrBadDimension = graph.ErrBadDimension
	// ErrNotConverged: an iterative solve exhausted its budget before
	// reaching tolerance.
	ErrNotConverged = solver.ErrNotConverged
	// ErrEngineBusy: two solves overlapped on one Engine, which is not
	// concurrency-safe; the second call fails instead of corrupting the
	// shared work buffers.
	ErrEngineBusy = solver.ErrEngineBusy
	// ErrInvalidInput: a caller-reachable precondition was violated
	// (out-of-range or duplicate vertices, a graph too large for exact
	// conductance enumeration, malformed input files).
	ErrInvalidInput = graph.ErrInvalidInput
)

// SolveOutcome classifies how a solve terminated: converged, iteration
// budget exhausted, cancelled via context, or numerical breakdown.
type SolveOutcome = solver.Outcome

// Solve outcomes.
const (
	OutcomeUnknown   = solver.OutcomeUnknown
	OutcomeConverged = solver.OutcomeConverged
	OutcomeMaxIter   = solver.OutcomeMaxIter
	OutcomeCancelled = solver.OutcomeCancelled
	OutcomeBreakdown = solver.OutcomeBreakdown
	OutcomeDiverged  = solver.OutcomeDiverged
	OutcomeStagnated = solver.OutcomeStagnated
)

// RecoveryPolicy configures restart-on-breakdown for a solve: after a
// recoverable failure (breakdown, divergence, stagnation) the iteration
// restarts from its current iterate up to MaxRestarts times, waiting
// Backoff (doubling per restart) in between. The zero value disables
// restarts. Set it via SolveOptions.Recovery.
type RecoveryPolicy = solver.RecoveryPolicy

// SolveMetrics instruments one solve: matvec and preconditioner-apply
// counts, iteration count, wall time per phase, scratch allocations, and the
// final residual. Every SolveResult carries one.
type SolveMetrics = solver.Metrics

// Engine is a reusable solve session over one graph: it owns the Laplacian
// operator, a preconditioner, and pooled work buffers, so repeated solves
// (batched right-hand sides, resistance queries) allocate nothing after the
// first. Results alias engine buffers until the next call; an Engine is not
// safe for concurrent use — run one Engine per goroutine.
type Engine = solver.Engine

// NewEngine builds a solve session for g with the given preconditioner
// (nil means unpreconditioned CG) and default options.
func NewEngine(g *Graph, m Preconditioner, opt SolveOptions) (*Engine, error) {
	return solver.NewLapEngine(g, m, opt)
}

// NewHierarchyEngine builds the batteries-included session: a multilevel
// Steiner preconditioner (the Remark 3 construction) plus a solve engine.
// This is the session form of Solve.
func NewHierarchyEngine(g *Graph, hopt HierarchyOptions, opt SolveOptions) (*Engine, error) {
	h, err := hierarchy.New(g, hopt)
	if err != nil {
		return nil, err
	}
	return solver.NewLapEngine(g, h, opt)
}

// SolvePCGCtx solves the Laplacian system A·x = b with preconditioned
// conjugate gradients under a context: cancellation or deadline expiry stops
// the iteration within one check interval (opt.CheckEvery, default 8
// iterations) with OutcomeCancelled. Dimension mismatches return an error
// wrapping ErrBadDimension. A nil m runs plain CG. This is a thin wrapper
// over Do with a single right-hand side.
func SolvePCGCtx(ctx context.Context, g *Graph, b []float64, m Preconditioner, opt SolveOptions) (SolveResult, error) {
	req := SolveRequest{B: [][]float64{b}, Method: SolveMethodPCG, M: m, Options: opt}
	if m == nil {
		req.Precond.Kind = PrecondNone
	}
	resp, err := Do(ctx, g, req)
	var res SolveResult
	if len(resp.Results) > 0 {
		res = resp.Results[len(resp.Results)-1]
	}
	return res, err
}

// SolveCtx is the batteries-included context-aware entry point: it builds a
// multilevel Steiner preconditioner and runs PCG to the default tolerance —
// Do with the zero-value PrecondSpec. For repeated solves on one graph build
// a NewHierarchyEngine instead, which amortizes both the preconditioner and
// the work buffers. Solve is a thin wrapper over this with
// context.Background().
func SolveCtx(ctx context.Context, g *Graph, b []float64) (SolveResult, error) {
	resp, err := Do(ctx, g, SolveRequest{B: [][]float64{b}, Options: solver.DefaultOptions()})
	var res SolveResult
	if len(resp.Results) > 0 {
		res = resp.Results[len(resp.Results)-1]
	}
	return res, err
}

// ChebyshevOptions configures SolveChebyshevCtx: the bootstrap PCG probe
// that estimates the spectrum of M⁻¹A, the Ritz-bracket widening applied to
// the estimate (Ritz values sit strictly inside the true spectrum), and the
// Chebyshev iteration itself.
type ChebyshevOptions struct {
	Iters      int     // Chebyshev iteration count (required > 0)
	ProbeIters int     // PCG probe depth for the spectrum estimate (default 40)
	WidenLow   float64 // multiplier on the λmin estimate (default 0.8)
	WidenHigh  float64 // multiplier on the λmax estimate (default 1.2)
	Tol        float64 // optional early-exit tolerance (0 = run all Iters)
	// Observer, when non-nil, receives the Chebyshev iteration's residual
	// norms as they are computed (the bootstrap probe is not streamed).
	Observer IterationObserver
}

// DefaultChebyshevOptions returns the historical settings: a 40-iteration
// probe and the 0.8/1.2 bracket widening.
func DefaultChebyshevOptions(iters int) ChebyshevOptions {
	return ChebyshevOptions{Iters: iters, ProbeIters: 40, WidenLow: 0.8, WidenHigh: 1.2}
}

// ChebyshevResult is a SolveResult plus the spectrum estimate the iteration
// was bootstrapped from.
type ChebyshevResult struct {
	SolveResult
	// Lmin, Lmax are the probe's Ritz estimates of the extreme eigenvalues
	// of M⁻¹A, before widening. The iteration used
	// [WidenLow·Lmin, WidenHigh·Lmax].
	Lmin, Lmax float64
	// ProbeMetrics instruments the bootstrap PCG probe; the embedded
	// SolveResult.Metrics covers the Chebyshev iteration itself.
	ProbeMetrics SolveMetrics
}

// SolveChebyshevCtx solves A·x = b by Chebyshev iteration — the
// inner-product-free companion of the parallel preconditioners (no
// reductions across workers per step). It bootstraps eigenvalue bounds for
// M⁻¹A from a short PCG probe, widens the Ritz bracket per opt, and
// iterates under ctx. This is a thin wrapper over Do with
// SolveMethodChebyshev and a single right-hand side; SolveChebyshev wraps it
// with context.Background() and default options.
func SolveChebyshevCtx(ctx context.Context, g *Graph, b []float64, m Preconditioner, opt ChebyshevOptions) (ChebyshevResult, error) {
	req := SolveRequest{B: [][]float64{b}, Method: SolveMethodChebyshev, M: m, Chebyshev: opt}
	if m == nil {
		req.Precond.Kind = PrecondNone
	}
	resp, err := Do(ctx, g, req)
	if err != nil {
		if len(resp.Results) > 0 {
			// The cancelled-probe case: the probe result travels back so
			// the caller can inspect the partial solve.
			return ChebyshevResult{SolveResult: resp.Results[0], ProbeMetrics: resp.ProbeMetrics}, err
		}
		return ChebyshevResult{}, err
	}
	return ChebyshevResult{
		SolveResult: resp.Results[0],
		Lmin:        resp.Lmin, Lmax: resp.Lmax,
		ProbeMetrics: resp.ProbeMetrics,
	}, nil
}
