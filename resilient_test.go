package hcd_test

// Tests for SolveResilient: the fallback ladder, the attempt trail, and
// deterministic fault-injected recovery.

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"hcd"
	"hcd/internal/faultinject"
)

func TestSolveResilientCleanPath(t *testing.T) {
	g := hcd.Grid2D(12, 12, nil, 1)
	b := meanFree(rand.New(rand.NewSource(41)), g.N())
	res, rep, err := hcd.SolveResilient(context.Background(), g, b, hcd.DefaultResilienceOptions())
	if err != nil {
		t.Fatalf("SolveResilient: %v", err)
	}
	if !res.Converged {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if rep.Recovered {
		t.Error("clean solve must not report Recovered")
	}
	if rep.Rung != hcd.RungHierarchyPCG || len(rep.Attempts) != 1 {
		t.Errorf("clean solve: rung %q, %d attempts; want %q, 1", rep.Rung, len(rep.Attempts), hcd.RungHierarchyPCG)
	}
}

func TestSolveResilientRecoversFromInjectedNaN(t *testing.T) {
	g := hcd.Grid2D(12, 12, nil, 1)
	b := meanFree(rand.New(rand.NewSource(42)), g.N())
	// Two NaN strikes: one kills rung 1's first attempt, one its in-rung
	// restart. The window then closes, so the reseeded rung runs clean.
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.MatvecNaN: {OnHit: 1, Count: 2},
	})
	defer restore()
	res, rep, err := hcd.SolveResilient(context.Background(), g, b, hcd.DefaultResilienceOptions())
	if err != nil {
		t.Fatalf("SolveResilient: %v\nreport: %s", err, rep)
	}
	if !res.Converged {
		t.Fatalf("outcome %v, report: %s", res.Outcome, rep)
	}
	if !rep.Recovered {
		t.Error("recovery via a later rung must set Recovered")
	}
	if rep.Rung != hcd.RungReseededPCG {
		t.Errorf("recovered on rung %q, want %q", rep.Rung, hcd.RungReseededPCG)
	}
	if len(rep.Attempts) != 2 {
		t.Fatalf("%d attempts, want 2 (failed hierarchy-pcg, converged reseed): %s", len(rep.Attempts), rep)
	}
	first := rep.Attempts[0]
	if first.Rung != hcd.RungHierarchyPCG || first.Outcome != hcd.OutcomeBreakdown {
		t.Errorf("attempt 1 = %+v, want a hierarchy-pcg breakdown", first)
	}
	if first.Restarts != 1 {
		t.Errorf("attempt 1 restarts = %d, want 1 (in-rung recovery tried first)", first.Restarts)
	}
	if first.Err == "" || !strings.Contains(first.Err, "NaN") && !strings.Contains(first.Err, "non-finite") {
		t.Errorf("attempt 1 Err %q does not explain the NaN breakdown", first.Err)
	}
}

func TestSolveResilientRecoversFromCorruptedBuild(t *testing.T) {
	g := hcd.Grid2D(40, 40, nil, 1)
	b := meanFree(rand.New(rand.NewSource(43)), g.N())
	// Corrupt the first hierarchy build's clustering scan; the degenerate
	// all-singleton level trips the no-reduction guard, and the reseeded
	// rebuild (past the fault window) succeeds.
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.PerturbCorrupt: {OnHit: 1, Count: 1},
	})
	defer restore()
	opt := hcd.DefaultResilienceOptions()
	opt.Hierarchy.DirectLimit = 50 // 1600 vertices >> 4·50 arms the guard
	res, rep, err := hcd.SolveResilient(context.Background(), g, b, opt)
	if err != nil {
		t.Fatalf("SolveResilient: %v\nreport: %s", err, rep)
	}
	if !res.Converged || !rep.Recovered || rep.Rung != hcd.RungReseededPCG {
		t.Fatalf("converged=%v recovered=%v rung=%q, report: %s", res.Converged, rep.Recovered, rep.Rung, rep)
	}
	if first := rep.Attempts[0]; !strings.Contains(first.Err, "no reduction") {
		t.Errorf("attempt 1 Err %q does not carry the build failure", first.Err)
	}
}

func TestSolveResilientAllRungsFail(t *testing.T) {
	g := hcd.Grid2D(10, 10, nil, 1)
	b := meanFree(rand.New(rand.NewSource(44)), g.N())
	// An open-ended NaN fault poisons every matvec in every rung.
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.MatvecNaN: {OnHit: 1, Count: 0},
	})
	defer restore()
	_, rep, err := hcd.SolveResilient(context.Background(), g, b, hcd.DefaultResilienceOptions())
	if !errors.Is(err, hcd.ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	// hierarchy-pcg, 2 reseeds, cg, chebyshev.
	if len(rep.Attempts) != 5 {
		t.Errorf("%d attempts, want 5: %s", len(rep.Attempts), rep)
	}
	if rep.Recovered || rep.Rung != "" {
		t.Errorf("failed ladder must not report recovery: %+v", rep)
	}
	for _, a := range rep.Attempts {
		if a.Err == "" {
			t.Errorf("attempt %s has no failure description", a.Rung)
		}
	}
}

func TestSolveResilientHonorsCancellation(t *testing.T) {
	g := hcd.Grid2D(10, 10, nil, 1)
	b := meanFree(rand.New(rand.NewSource(45)), g.N())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, rep, err := hcd.SolveResilient(ctx, g, b, hcd.DefaultResilienceOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The ladder must stop immediately, not walk every rung.
	if len(rep.Attempts) > 1 {
		t.Errorf("cancelled ladder ran %d attempts: %s", len(rep.Attempts), rep)
	}
}

func TestEngineBusyExported(t *testing.T) {
	if hcd.ErrEngineBusy == nil || hcd.ErrInvalidInput == nil {
		t.Fatal("sentinels must be exported")
	}
}
