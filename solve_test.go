package hcd_test

// Tests for the solve engine API: context entry points, sentinel errors,
// engine sessions, Chebyshev options, and per-solve metrics.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"hcd"
)

func TestSentinelErrors(t *testing.T) {
	// NewGraph: out-of-range endpoint and negative vertex count.
	if _, err := hcd.NewGraph(3, []hcd.Edge{{U: 0, V: 7, W: 1}}); !errors.Is(err, hcd.ErrBadDimension) {
		t.Errorf("out-of-range edge: %v, want ErrBadDimension", err)
	}
	if _, err := hcd.NewGraph(-1, nil); !errors.Is(err, hcd.ErrBadDimension) {
		t.Errorf("negative n: %v, want ErrBadDimension", err)
	}
	// NewResistanceComputer requires a connected graph.
	g, err := hcd.NewGraph(4, []hcd.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hcd.NewResistanceComputer(g); !errors.Is(err, hcd.ErrDisconnected) {
		t.Errorf("disconnected graph: %v, want ErrDisconnected", err)
	}
	// Solve paths reject mismatched right-hand sides.
	conn := hcd.Grid2D(5, 5, nil, 1)
	if _, err := hcd.SolvePCGCtx(context.Background(), conn, make([]float64, 7),
		hcd.JacobiPreconditioner(conn), hcd.DefaultSolveOptions()); !errors.Is(err, hcd.ErrBadDimension) {
		t.Errorf("short rhs: %v, want ErrBadDimension", err)
	}
	if _, err := hcd.NewEngine(conn, hcd.JacobiPreconditioner(hcd.Grid2D(3, 3, nil, 1)),
		hcd.DefaultSolveOptions()); !errors.Is(err, hcd.ErrBadDimension) {
		t.Errorf("mismatched preconditioner: %v, want ErrBadDimension", err)
	}
}

func TestSolveCtxMatchesSolve(t *testing.T) {
	g := hcd.OCT3D(6, 6, 6, hcd.DefaultOCTOptions())
	rng := rand.New(rand.NewSource(31))
	b := meanFree(rng, g.N())
	res, err := hcd.SolveCtx(context.Background(), g, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != hcd.OutcomeConverged || !res.Converged {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.Metrics.MatVecs == 0 || res.Metrics.PrecondApplies == 0 || res.Metrics.TotalTime <= 0 {
		t.Errorf("hierarchy-preconditioned solve metrics not populated: %+v", res.Metrics)
	}
	legacy, err := hcd.Solve(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Iterations != res.Iterations {
		t.Errorf("wrapper iterations %d vs ctx %d", legacy.Iterations, res.Iterations)
	}
}

func TestSolveCtxCancelled(t *testing.T) {
	g := hcd.Grid2D(20, 20, hcd.LognormalWeights(1), 2)
	rng := rand.New(rand.NewSource(32))
	b := meanFree(rng, g.N())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := hcd.SolvePCGCtx(ctx, g, b, hcd.JacobiPreconditioner(g), hcd.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != hcd.OutcomeCancelled {
		t.Errorf("outcome %v, want OutcomeCancelled", res.Outcome)
	}
}

func TestHierarchyEngineBatchedSolves(t *testing.T) {
	g := hcd.OCT3D(6, 6, 6, hcd.DefaultOCTOptions())
	eng, err := hcd.NewHierarchyEngine(g, hcd.DefaultHierarchyOptions(), hcd.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	for k := 0; k < 3; k++ {
		b := meanFree(rng, g.N())
		res, err := eng.Solve(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("batched solve %d: %v after %d iterations", k, res.Outcome, res.Iterations)
		}
		if k > 0 && res.Metrics.ScratchAllocs != 0 {
			t.Errorf("batched solve %d allocated %d buffers", k, res.Metrics.ScratchAllocs)
		}
	}
}

func TestSolveChebyshevCtxReportsSpectrum(t *testing.T) {
	g := hcd.Grid2D(12, 12, hcd.LognormalWeights(1), 1)
	rng := rand.New(rand.NewSource(34))
	b := meanFree(rng, g.N())
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hcd.SolveChebyshevCtx(context.Background(), g, b, p, hcd.DefaultChebyshevOptions(80))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Lmin > 0) || !(res.Lmax >= res.Lmin) {
		t.Errorf("spectrum estimate [%v, %v] not populated", res.Lmin, res.Lmax)
	}
	if res.Metrics.MatVecs == 0 || res.ProbeMetrics.MatVecs == 0 {
		t.Errorf("metrics not populated: iter %+v probe %+v", res.Metrics, res.ProbeMetrics)
	}
	if res.Residuals[len(res.Residuals)-1] > res.Residuals[0]*1e-5 {
		t.Errorf("residual %v of initial %v", res.Residuals[len(res.Residuals)-1], res.Residuals[0])
	}
	// Custom widening + early exit.
	opt := hcd.ChebyshevOptions{Iters: 400, ProbeIters: 30, WidenLow: 0.7, WidenHigh: 1.3, Tol: 1e-6}
	res2, err := hcd.SolveChebyshevCtx(context.Background(), g, b, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome != hcd.OutcomeConverged {
		t.Errorf("early-exit run: %v after %d iterations", res2.Outcome, res2.Iterations)
	}
	if res2.Iterations >= 400 {
		t.Errorf("early exit did not trigger (%d iterations)", res2.Iterations)
	}
}
