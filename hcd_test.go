package hcd_test

import (
	"math"
	"math/rand"
	"testing"

	"hcd"
)

func meanFree(rng *rand.Rand, n int) []float64 {
	b := make([]float64, n)
	s := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		s += b[i]
	}
	for i := range b {
		b[i] -= s / float64(n)
	}
	return b
}

func residual(g *hcd.Graph, x, b []float64) float64 {
	ax := make([]float64, len(x))
	g.LapMul(ax, x)
	worst := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestQuickstartFlow(t *testing.T) {
	g := hcd.Grid3D(8, 8, 8, hcd.LognormalWeights(1), 1)
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := hcd.Validate(d); err != nil {
		t.Fatal(err)
	}
	rep := hcd.Evaluate(d)
	if rep.Phi <= 0 || rep.Rho < 2 {
		t.Fatalf("report %+v", rep)
	}
	p, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b := meanFree(rng, g.N())
	res, err := hcd.SolvePCG(g, b, p, hcd.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged after %d iterations", res.Iterations)
	}
	if r := residual(g, res.X, b); r > 1e-5 {
		t.Errorf("residual %v", r)
	}
}

func TestSolveDefaultPath(t *testing.T) {
	g := hcd.OCT3D(8, 8, 16, hcd.DefaultOCTOptions())
	rng := rand.New(rand.NewSource(3))
	b := meanFree(rng, g.N())
	res, err := hcd.Solve(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("default Solve did not converge (%d iters)", res.Iterations)
	}
	if r := residual(g, res.X, b); r > 1e-5 {
		t.Errorf("residual %v", r)
	}
}

func TestPlanarPipelineEndToEnd(t *testing.T) {
	g := hcd.PlanarMesh(16, 16, hcd.LognormalWeights(1), 4)
	res, err := hcd.DecomposePlanar(g, hcd.DefaultPlanarOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := hcd.Validate(res.D); err != nil {
		t.Fatal(err)
	}
	rep := hcd.Evaluate(res.D)
	if rep.Phi <= 0 {
		t.Errorf("φ = %v", rep.Phi)
	}
	if rep.Rho <= 1 {
		t.Errorf("ρ = %v", rep.Rho)
	}
	if res.CoreSize <= 0 || res.CutEdges <= 0 {
		t.Errorf("pipeline stats %+v", res)
	}
	t.Logf("planar: φ=%.3f ρ=%.2f core=%d cut=%d avgStretch=%.2f",
		rep.Phi, rep.Rho, res.CoreSize, res.CutEdges, res.AvgStretch)
}

func TestMinorFreePipeline(t *testing.T) {
	g := hcd.Grid2D(20, 20, hcd.LognormalWeights(1.5), 5)
	res, err := hcd.DecomposeMinorFree(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := hcd.Validate(res.D); err != nil {
		t.Fatal(err)
	}
	if rep := hcd.Evaluate(res.D); rep.Phi <= 0 || rep.Rho <= 1 {
		t.Errorf("report %+v", rep)
	}
}

func TestTreeDecompositionAPI(t *testing.T) {
	g := hcd.RandomTree(200, hcd.UniformWeights(0.1, 10), 6)
	d, err := hcd.DecomposeTree(g)
	if err != nil {
		t.Fatal(err)
	}
	rep := hcd.Evaluate(d)
	if rep.Phi < 1.0/3-1e-9 {
		t.Errorf("tree φ = %v below certified floor", rep.Phi)
	}
	if rep.Rho < 6.0/5 {
		t.Errorf("tree ρ = %v", rep.Rho)
	}
}

func TestSteinerVsSubgraphFigure6Shape(t *testing.T) {
	// The Figure 6 claim: at matched reduction factor, Steiner PCG needs
	// fewer iterations than subgraph PCG on a weighted 3D grid with large
	// weight variation.
	g := hcd.OCT3D(10, 10, 10, hcd.OCTOptions{Layers: 4, Contrast: 100, NoiseSigma: 1, Seed: 8})
	rng := rand.New(rand.NewSource(9))
	b := meanFree(rng, g.N())

	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	steinerP, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		t.Fatal(err)
	}
	subOpt := hcd.DefaultPlanarOptions()
	subOpt.ExtraFraction = 0.12
	subRes, err := hcd.NewSubgraphPreconditioner(g, subOpt, g.N())
	if err != nil {
		t.Fatal(err)
	}
	opt := hcd.DefaultSolveOptions()
	sres, serr := hcd.SolvePCG(g, b, steinerP, opt)
	gres, gerr := hcd.SolvePCG(g, b, subRes.P, opt)
	if serr != nil || gerr != nil {
		t.Fatalf("solve errors: steiner=%v subgraph=%v", serr, gerr)
	}
	if !sres.Converged || !gres.Converged {
		t.Fatalf("convergence: steiner=%v subgraph=%v", sres.Converged, gres.Converged)
	}
	t.Logf("iterations: steiner=%d subgraph=%d (core=%d, quotient=%d)",
		sres.Iterations, gres.Iterations, subRes.CoreSize, d.Count)
	if sres.Iterations > gres.Iterations {
		t.Errorf("Steiner (%d iters) should beat subgraph (%d iters) on OCT volume",
			sres.Iterations, gres.Iterations)
	}
}

func TestMeasureSupportSteiner(t *testing.T) {
	g := hcd.Grid2D(12, 12, hcd.LognormalWeights(1), 10)
	d, err := hcd.DecomposeFixedDegree(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	nums, err := hcd.MeasureSupport(g, p, meanFree(rng, g.N()), 60)
	if err != nil {
		t.Fatal(err)
	}
	rep := hcd.Evaluate(d)
	bound := 3 * (1 + 2/math.Pow(rep.Phi, 3))
	// σ(B,A) must respect Theorem 3.5 (the probe may slightly underestimate,
	// never overestimate beyond roundoff).
	if nums.SigmaBA > bound*1.01 {
		t.Errorf("σ(B,A)=%v exceeds Theorem 3.5 bound %v (φ=%v)", nums.SigmaBA, bound, rep.Phi)
	}
	if nums.Kappa < 1 {
		t.Errorf("κ = %v", nums.Kappa)
	}
	t.Logf("κ(A,B)=%.2f σ(A,B)=%.2f σ(B,A)=%.2f bound=%.1f", nums.Kappa, nums.SigmaAB, nums.SigmaBA, bound)
}

func TestLaminarHierarchyLevels(t *testing.T) {
	g := hcd.Grid3D(10, 10, 10, hcd.LognormalWeights(1), 12)
	lam, err := hcd.BuildLaminar(g, 4, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	levels := lam.Levels
	if len(levels) < 2 {
		t.Fatalf("expected multiple levels, got %d", len(levels))
	}
	// Each level must reduce by ≥ 2 and partition its own quotient.
	prev := g.N()
	for i, d := range levels {
		if err := hcd.Validate(d); err != nil {
			t.Fatalf("level %d invalid: %v", i, err)
		}
		if d.G.N() != prev {
			t.Fatalf("level %d graph has %d vertices, want %d", i, d.G.N(), prev)
		}
		if float64(d.Count) > float64(prev)/2+1 {
			t.Errorf("level %d reduction below 2: %d -> %d", i, prev, d.Count)
		}
		prev = d.Count
	}
}

func TestSpectralAPI(t *testing.T) {
	g := hcd.Grid2D(10, 10, nil, 1)
	vals, vecs, err := hcd.SmallestEigenpairs(g, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] <= 0 || vals[0] > vals[1]+1e-12 {
		t.Errorf("eigenvalues %v", vals)
	}
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := hcd.Alignment(d, vecs[0])
	if a < 0 || a > 1+1e-9 {
		t.Errorf("alignment %v", a)
	}
	// Theorem 4.1 shape: the lowest eigenvector aligns well with the
	// cluster space.
	if a < 0.5 {
		t.Errorf("low eigenvector alignment %v suspiciously small", a)
	}
	lo, hi, err := hcd.CheegerBounds(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Errorf("Cheeger bracket inverted: [%v, %v]", lo, hi)
	}
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := hcd.NewGraph(2, []hcd.Edge{{U: 0, V: 0, W: 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := hcd.NewGraph(2, []hcd.Edge{{U: 0, V: 1, W: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestLaminarValidation(t *testing.T) {
	g := hcd.Grid2D(4, 4, nil, 1)
	if _, err := hcd.BuildLaminar(g, 4, 0, 1); err == nil {
		t.Error("coarse=0 accepted")
	}
}
