package hcd

// The fault-tolerant solve path: SolveResilient walks a ladder of
// solver/preconditioner configurations, from the best-performing to the most
// robust, until one converges. Each rung's attempt — outcome, iteration
// count, restarts, why it fell through — is recorded in a ResilienceReport,
// so a recovered solve documents exactly what failed and what saved it.
//
// The ladder, in order:
//
//	[1] hierarchy-pcg          PCG with the multilevel Steiner preconditioner
//	                           (the paper's construction; fastest when healthy)
//	[2] reseeded-hierarchy-pcg the same, with the hierarchy rebuilt from
//	                           re-seeded randomized clusterings — recovers
//	                           from an unluckily or corruptly built hierarchy
//	[3] cg                     unpreconditioned conjugate gradients — removes
//	                           the preconditioner from the fault surface
//	[4] chebyshev              Jacobi-preconditioned Chebyshev iteration with
//	                           conservative spectrum bounds — needs no inner
//	                           products and no curvature, the last resort
//
// Every rung runs under the caller's RecoveryPolicy, so transient breakdowns
// restart in place before the ladder moves on. Build failures (a hierarchy
// that cannot be constructed) are recorded as attempts and fall through like
// solve failures. Context cancellation stops the ladder immediately.

import (
	"context"
	"fmt"
	"time"

	"hcd/internal/hierarchy"
	"hcd/internal/obs"
	"hcd/internal/solver"
)

// Ladder rung names, as they appear in SolveAttempt.Rung.
const (
	RungHierarchyPCG = "hierarchy-pcg"
	RungReseededPCG  = "reseeded-hierarchy-pcg"
	RungCG           = "cg"
	RungChebyshev    = "chebyshev"
)

// ResilienceOptions configures SolveResilient.
type ResilienceOptions struct {
	// Solve is the per-rung iteration configuration (tolerance, budget,
	// guardrails). Its Recovery policy applies within each rung.
	Solve SolveOptions
	// Hierarchy configures the rung-1 preconditioner build; rung 2 rebuilds
	// with the same options under perturbed seeds.
	Hierarchy HierarchyOptions
	// ReseedTries is the number of rung-2 rebuild attempts (default 2,
	// negative disables the rung).
	ReseedTries int
	// ChebyshevIters is the rung-4 iteration budget (default 4·MaxIter of
	// the PCG rungs — Chebyshev with conservative bounds converges slower).
	ChebyshevIters int
}

// DefaultResilienceOptions returns the standard ladder configuration: default
// solve tolerance and hierarchy, one in-rung restart, two reseed tries.
func DefaultResilienceOptions() ResilienceOptions {
	opt := ResilienceOptions{
		Solve:       DefaultSolveOptions(),
		Hierarchy:   DefaultHierarchyOptions(),
		ReseedTries: 2,
	}
	opt.Solve.Recovery = RecoveryPolicy{MaxRestarts: 1}
	return opt
}

// SolveAttempt records one rung of a resilient solve.
type SolveAttempt struct {
	Rung          string
	Outcome       SolveOutcome
	Iterations    int
	Restarts      int
	FinalResidual float64
	Duration      time.Duration
	// Err holds the failure description: a build or solve error, or the
	// solver's Reason for a guard-terminated attempt. Empty on success.
	Err string
}

// ResilienceReport is the attempt trail of one SolveResilient call.
type ResilienceReport struct {
	Attempts []SolveAttempt
	// Recovered is true when the solve converged on any rung after the
	// first attempt failed.
	Recovered bool
	// Rung names the ladder rung that produced the returned solution
	// (empty if no rung converged).
	Rung string
}

// Publish counts the ladder's attempts into the registry under the
// hcd_resilient_* namespace, one labelled series per (rung, outcome) pair.
// SolveResilient calls it automatically when a registry travels in the
// solve context (WithMetricRegistry); nil registries are no-ops.
func (r ResilienceReport) Publish(reg *MetricRegistry) {
	if reg == nil {
		return
	}
	for _, a := range r.Attempts {
		reg.Counter(`hcd_resilient_attempts_total{rung="` + a.Rung + `",outcome="` + a.Outcome.String() + `"}`).Inc()
	}
	reg.Counter("hcd_resilient_solves_total").Inc()
	if r.Recovered {
		reg.Counter("hcd_resilient_recovered_total").Inc()
	}
	if r.Rung == "" {
		reg.Counter("hcd_resilient_failed_total").Inc()
	}
}

// String renders the attempt trail on one line per rung.
func (r ResilienceReport) String() string {
	s := ""
	for i, a := range r.Attempts {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%s: %v", a.Rung, a.Outcome)
		if a.Err != "" {
			s += " (" + a.Err + ")"
		}
	}
	return s
}

// SolveResilient solves the Laplacian system A·x = b with fallback: it walks
// the rung ladder documented above until a rung converges, recording every
// attempt. On success it returns the converged result, the report, and a nil
// error. When every rung fails it returns the last attempt's result and an
// error wrapping ErrNotConverged; when the context is cancelled it returns
// an error wrapping the context's error. The report is meaningful in every
// case. SolveResilient is a thin wrapper over Do with SolveMethodResilient
// and a single right-hand side.
func SolveResilient(ctx context.Context, g *Graph, b []float64, opt ResilienceOptions) (SolveResult, ResilienceReport, error) {
	resp, err := Do(ctx, g, SolveRequest{B: [][]float64{b}, Method: SolveMethodResilient, Resilience: opt})
	var res SolveResult
	var rep ResilienceReport
	if len(resp.Results) > 0 {
		res = resp.Results[len(resp.Results)-1]
	}
	if len(resp.Resilience) > 0 {
		rep = resp.Resilience[len(resp.Resilience)-1]
	}
	return res, rep, err
}

// solveResilient is the ladder implementation behind Do's resilient method
// (and hence SolveResilient), one right-hand side per call.
func solveResilient(ctx context.Context, g *Graph, b []float64, opt ResilienceOptions) (SolveResult, ResilienceReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Solve.Tol <= 0 {
		opt.Solve = DefaultSolveOptions()
	}
	if opt.Hierarchy.SizeCap < 2 {
		opt.Hierarchy = DefaultHierarchyOptions()
	}
	if opt.ReseedTries == 0 {
		opt.ReseedTries = 2
	}
	ctx, lsp := obs.StartSpan(ctx, "resilient/solve")
	var (
		report ResilienceReport
		last   SolveResult
		a      = solver.LapOperator(g)
	)
	defer func() {
		if lsp != nil {
			lsp.Arg("attempts", len(report.Attempts))
			lsp.Arg("rung", report.Rung)
			lsp.Arg("recovered", report.Recovered)
		}
		lsp.End()
		report.Publish(obs.RegistryFrom(ctx))
	}()
	// startRung opens the span of one ladder rung (build plus solve); the
	// disabled path materializes no name string.
	startRung := func(rung string) (context.Context, *obs.Span) {
		if obs.TracerFrom(ctx) == nil {
			return ctx, nil
		}
		return obs.StartSpan(ctx, "resilient/rung/"+rung)
	}
	record := func(rung string, res SolveResult, err error, dur time.Duration) bool {
		at := SolveAttempt{
			Rung:          rung,
			Outcome:       res.Outcome,
			Iterations:    res.Iterations,
			Restarts:      res.Metrics.Restarts,
			FinalResidual: res.Metrics.FinalResidual,
			Duration:      dur,
		}
		switch {
		case err != nil:
			at.Err = err.Error()
		case res.Reason != "":
			at.Err = res.Reason
		case res.Outcome != OutcomeConverged:
			at.Err = res.Outcome.String()
		}
		report.Attempts = append(report.Attempts, at)
		last = res
		if err == nil && res.Converged {
			report.Rung = rung
			report.Recovered = len(report.Attempts) > 1
			return true
		}
		return false
	}
	tryPCG := func(sctx context.Context, rung string, m Preconditioner) (bool, error) {
		start := time.Now()
		res, err := solver.PCGCtx(sctx, a, m, b, opt.Solve)
		done := record(rung, res, err, time.Since(start))
		if done {
			return true, nil
		}
		if ctx.Err() != nil {
			return false, fmt.Errorf("hcd: resilient solve cancelled at rung %s: %w", rung, ctx.Err())
		}
		return false, nil
	}

	// [1] Hierarchy-preconditioned PCG.
	start := time.Now()
	rctx, rsp := startRung(RungHierarchyPCG)
	h, err := hierarchy.NewCtx(rctx, g, opt.Hierarchy)
	if err != nil {
		rsp.End()
		record(RungHierarchyPCG, SolveResult{}, fmt.Errorf("hierarchy build: %w", err), time.Since(start))
		if ctx.Err() != nil {
			return last, report, fmt.Errorf("hcd: resilient solve cancelled at rung %s: %w", RungHierarchyPCG, ctx.Err())
		}
	} else {
		done, cerr := tryPCG(rctx, RungHierarchyPCG, h)
		rsp.End()
		if done || cerr != nil {
			return last, report, cerr
		}
	}

	// [2] Rebuilt hierarchies under fresh randomized seeds: a bad draw of
	// the perturbed clustering (or a corrupted build) is re-rolled.
	for try := 0; try < opt.ReseedTries; try++ {
		hopt := opt.Hierarchy
		// A large odd prime offset keeps reseeded streams disjoint from
		// every level's Seed+level sequence.
		hopt.Seed = opt.Hierarchy.Seed + int64(try+1)*1000003
		start := time.Now()
		rctx, rsp := startRung(RungReseededPCG)
		h, err := hierarchy.NewCtx(rctx, g, hopt)
		if err != nil {
			rsp.End()
			record(RungReseededPCG, SolveResult{}, fmt.Errorf("hierarchy rebuild (seed %d): %w", hopt.Seed, err), time.Since(start))
			if ctx.Err() != nil {
				return last, report, fmt.Errorf("hcd: resilient solve cancelled at rung %s: %w", RungReseededPCG, ctx.Err())
			}
			continue
		}
		done, cerr := tryPCG(rctx, RungReseededPCG, h)
		rsp.End()
		if done || cerr != nil {
			return last, report, cerr
		}
	}

	// [3] Unpreconditioned CG.
	rctx, rsp = startRung(RungCG)
	done, cerr := tryPCG(rctx, RungCG, nil)
	rsp.End()
	if done || cerr != nil {
		return last, report, cerr
	}

	// [4] Jacobi-Chebyshev with conservative bounds. For D⁻¹L the spectrum
	// lies in (0, 2]; probing λmin via a short PCG probe tightens the lower
	// bound, and a failed probe falls back to a fixed wide bracket.
	cheb := opt.Solve
	cheb.MaxIter = opt.ChebyshevIters
	if cheb.MaxIter <= 0 {
		base := opt.Solve.MaxIter
		if base <= 0 {
			base = 10*g.N() + 50
		}
		cheb.MaxIter = 4 * base
	}
	jac := JacobiPreconditioner(g)
	lmin, lmax := 1e-4, 2.0
	rctx, rsp = startRung(RungChebyshev)
	probe, perr := solver.PCGCtx(rctx, a, jac, b, solver.Options{Tol: 1e-12, MaxIter: 40, ProjectMean: opt.Solve.ProjectMean})
	if perr == nil && len(probe.Alphas) > 0 {
		if lo, hi, serr := solver.SpectrumEstimate(probe.Alphas, probe.Betas); serr == nil && lo > 0 {
			lmin, lmax = 0.5*lo, 1.25*hi
		}
	}
	if ctx.Err() != nil {
		rsp.End()
		return last, report, fmt.Errorf("hcd: resilient solve cancelled at rung %s: %w", RungChebyshev, ctx.Err())
	}
	start = time.Now()
	res, err := solver.ChebyshevCtx(rctx, a, jac, b, lmin, lmax, cheb)
	rsp.End()
	if record(RungChebyshev, res, err, time.Since(start)) {
		return last, report, nil
	}
	if ctx.Err() != nil {
		return last, report, fmt.Errorf("hcd: resilient solve cancelled at rung %s: %w", RungChebyshev, ctx.Err())
	}
	return last, report, fmt.Errorf("hcd: all %d resilient-solve attempts failed (%s): %w",
		len(report.Attempts), report.String(), ErrNotConverged)
}
