package hcd

import (
	"math/rand"

	"hcd/internal/treealg"
	"hcd/internal/workload"
)

// The workload re-exports give library users the same graph families the
// paper evaluates on without reaching into internal packages.

// WeightFn draws one edge weight.
type WeightFn = func(rng *rand.Rand) float64

// LognormalWeights returns a sampler of exp(σ·N(0,1)) weights — the paper's
// large-variation regime at σ ≥ 1.
func LognormalWeights(sigma float64) WeightFn { return workload.Lognormal(sigma) }

// UniformWeights returns a sampler of Uniform(lo, hi) weights.
func UniformWeights(lo, hi float64) WeightFn { return workload.UniformWeight(lo, hi) }

// Grid2D returns an nx×ny grid graph (nil wf = unit weights).
func Grid2D(nx, ny int, wf WeightFn, seed int64) *Graph {
	return workload.Grid2D(nx, ny, wf, seed)
}

// Grid3D returns an nx×ny×nz grid graph — the paper's weighted 3D regular
// grid (nil wf = unit weights).
func Grid3D(nx, ny, nz int, wf WeightFn, seed int64) *Graph {
	return workload.Grid3D(nx, ny, nz, wf, seed)
}

// Grid3DAnisotropic returns a 3D grid with fixed per-direction weights
// wx/wy/wz — the classic strong-coupling hard case for pointwise smoothers
// (ablation A5).
func Grid3DAnisotropic(nx, ny, nz int, wx, wy, wz float64) *Graph {
	return workload.Grid3DAnisotropic(nx, ny, nz, wx, wy, wz)
}

// OCTOptions configures the synthetic optical-coherence-tomography volume
// standing in for the paper's 3D medical scans.
type OCTOptions = workload.OCTOptions

// DefaultOCTOptions mirrors the paper's "very large weight variations"
// regime: 4 layers at contrast 100 with unit-σ speckle.
func DefaultOCTOptions() OCTOptions { return workload.DefaultOCTOptions() }

// OCT3D returns a synthetic layered, speckled 3D scan volume graph.
func OCT3D(nx, ny, nz int, opt OCTOptions) *Graph {
	return workload.OCT3D(nx, ny, nz, opt)
}

// PlanarMesh returns an nx×ny grid with one random diagonal per cell — a
// planar triangulated mesh for the Theorem 2.2 experiments.
func PlanarMesh(nx, ny int, wf WeightFn, seed int64) *Graph {
	return workload.GridDiag2D(nx, ny, wf, seed)
}

// RandomRegular returns a random simple d-regular graph — the fixed-degree
// class of Section 3.1.
func RandomRegular(n, d int, wf WeightFn, seed int64) (*Graph, error) {
	return workload.RandomRegular(n, d, wf, seed)
}

// PowerLaw returns a preferential-attachment graph on n vertices with m
// edges per arriving vertex — a heavy-tailed irregular workload (1 ≤ m < n).
func PowerLaw(n, m int, wf WeightFn, seed int64) (*Graph, error) {
	return workload.PowerLaw(n, m, wf, seed)
}

// RoadNetwork returns a planar-with-bottlenecks graph: an nx×ny grid of
// district×district street blocks whose adjacent districts connect only
// through one or two heavy "highway" crossings per shared border — the
// road-network cut structure (district ≥ 2).
func RoadNetwork(nx, ny, district int, wf WeightFn, seed int64) (*Graph, error) {
	return workload.RoadNetwork(nx, ny, district, wf, seed)
}

// FEMesh returns a finite-element-style triangulated mesh: a graded, jittered
// nx×ny point lattice split along shorter diagonals, with inverse-edge-length
// (stiffness-like) weights optionally scaled by a wf material coefficient.
// jitter < 0 selects the default 0.25.
func FEMesh(nx, ny int, jitter float64, wf WeightFn, seed int64) (*Graph, error) {
	return workload.FEMesh(nx, ny, jitter, wf, seed)
}

// RandomTree returns a uniformly random labeled tree (Prüfer sampling).
func RandomTree(n int, wf WeightFn, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var draw func() float64
	if wf != nil {
		draw = func() float64 { return wf(rng) }
	}
	return treealg.RandomTree(rng, n, draw)
}
