package hcd

import (
	"hcd/internal/localcluster"
	"hcd/internal/randwalk"
)

// RandomWalk evolves probability distributions under the (optionally lazy)
// natural random walk of a graph — the Section 4 connection between
// high-conductance clusters and trapped walk mass.
type RandomWalk = randwalk.Walk

// NewRandomWalk returns a walk on g with the given per-step holding
// probability (0 = pure walk, 0.5 = standard lazy walk).
func NewRandomWalk(g *Graph, laziness float64) (*RandomWalk, error) {
	return randwalk.New(g, laziness)
}

// ClusterMass returns the walk mass inside each cluster of d under the
// distribution p.
func ClusterMass(d *Decomposition, p []float64) []float64 {
	return randwalk.ClusterMass(d, p)
}

// BoundaryRatio returns ψ(C) = out(C)/vol(C) for cluster c: the exact
// one-step escape rate of a walk started from the stationary distribution
// restricted to the cluster.
func BoundaryRatio(d *Decomposition, c int) float64 {
	return randwalk.BoundaryRatio(d, c)
}

// TotalVariation returns ½‖p − q‖₁ between two distributions.
func TotalVariation(p, q []float64) float64 { return randwalk.TotalVariation(p, q) }

// WalkEmbedding evolves k random mean-free mixtures for t steps of the
// (lazy) walk and returns the volume-normalized coordinates — the "global"
// cluster-detection signal Section 4 analyzes: vertices of one
// high-conductance cluster land close together.
func WalkEmbedding(g *Graph, k, t int, laziness float64, seed int64) ([][]float64, error) {
	return randwalk.WalkEmbedding(g, k, t, laziness, seed)
}

// LocalClusterOptions configures truncated-walk local clustering.
type LocalClusterOptions = localcluster.Options

// LocalClusterResult is a locally grown cluster with its certificate.
type LocalClusterResult = localcluster.Result

// DefaultLocalClusterOptions returns the standard Nibble settings.
func DefaultLocalClusterOptions() LocalClusterOptions { return localcluster.DefaultOptions() }

// LocalCluster grows a cluster around a seed vertex with a truncated lazy
// random walk and a sweep cut (Spielman–Teng Nibble style) — the "local"
// counterpart the paper's global decompositions are contrasted with. The
// work is proportional to the cluster found, not to the graph.
func LocalCluster(g *Graph, seed int, opt LocalClusterOptions) (*LocalClusterResult, error) {
	return localcluster.Nibble(g, seed, opt)
}
