package hcd_test

import (
	"context"
	"math/rand"
	"testing"

	"hcd"
)

// Shard counts must not change solve quality: the hierarchy preconditioner
// built from a sharded decomposition has to converge in essentially the same
// number of PCG iterations as the single-pass build. 10% is the contract the
// scaling docs promise.
func TestShardedSolveIterationInvariance(t *testing.T) {
	graphs := map[string]*hcd.Graph{
		"grid3d": hcd.Grid3D(14, 14, 14, hcd.LognormalWeights(1), 3),
	}
	if pl, err := hcd.PowerLaw(4000, 3, hcd.UniformWeights(0.5, 5), 11); err == nil {
		graphs["powerlaw"] = pl
	} else {
		t.Fatal(err)
	}
	for name, g := range graphs {
		rng := rand.New(rand.NewSource(7))
		b := meanFree(rng, g.N())
		iters := map[int]int{}
		for _, shards := range []int{1, 2, 8} {
			resp, err := hcd.Do(context.Background(), g, hcd.SolveRequest{
				B: [][]float64{b},
				Precond: hcd.PrecondSpec{
					Kind: hcd.PrecondHierarchy, Shards: shards, Seed: 1,
				},
			})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			res := resp.Results[0]
			if !res.Converged {
				t.Fatalf("%s shards=%d: %s after %d iterations", name, shards, res.Outcome, res.Iterations)
			}
			iters[shards] = res.Iterations
		}
		base := iters[1]
		for _, shards := range []int{2, 8} {
			diff := iters[shards] - base
			if diff < 0 {
				diff = -diff
			}
			if 10*diff > base {
				t.Errorf("%s: shards=%d takes %d PCG iterations vs %d single-pass (>10%% apart)",
					name, shards, iters[shards], base)
			}
		}
	}
}

// DecomposeCtx exposes the shard plumbing end to end: stats populated,
// Shards=1 identical to the default path.
func TestDecomposeShardsOption(t *testing.T) {
	g := hcd.Grid3D(12, 12, 12, hcd.LognormalWeights(1), 5)
	single, err := hcd.DecomposeCtx(context.Background(), g, hcd.DecomposeOptions{
		Method: hcd.MethodFixedDegree, SizeCap: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if single.ShardStats.Shards != 1 {
		t.Errorf("default build reports %d shards, want 1", single.ShardStats.Shards)
	}
	sharded, err := hcd.DecomposeCtx(context.Background(), g, hcd.DecomposeOptions{
		Method: hcd.MethodFixedDegree, SizeCap: 4, Seed: 2, Shards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.ShardStats.Shards != 8 {
		t.Errorf("sharded build reports %d shards, want 8", sharded.ShardStats.Shards)
	}
	if sharded.ShardStats.BoundaryEdges == 0 {
		t.Error("sharded build counted no boundary edges")
	}
	if len(sharded.D.Assign) != g.N() {
		t.Fatalf("assign length %d, want %d", len(sharded.D.Assign), g.N())
	}
	one, err := hcd.DecomposeCtx(context.Background(), g, hcd.DecomposeOptions{
		Method: hcd.MethodFixedDegree, SizeCap: 4, Seed: 2, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range one.D.Assign {
		if one.D.Assign[v] != single.D.Assign[v] {
			t.Fatal("Shards=1 differs from the default single-pass build")
		}
	}
}
