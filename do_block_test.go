package hcd_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"hcd"
)

// TestDoBlockRoutingMatchesSequential: a multi-RHS PCG request takes the
// block path by default and DisableBlock restores the sequential loop; both
// converge to the same solutions with per-column iteration counts within
// ±10% of each other.
func TestDoBlockRoutingMatchesSequential(t *testing.T) {
	g := hcd.Grid2D(20, 20, nil, 1)
	rng := rand.New(rand.NewSource(31))
	B := make([][]float64, 4)
	for i := range B {
		B[i] = meanFree(rng, g.N())
	}
	req := hcd.SolveRequest{B: B, Precond: hcd.PrecondSpec{Kind: hcd.PrecondJacobi}}
	block, err := hcd.Do(context.Background(), g, req)
	if err != nil {
		t.Fatal(err)
	}
	req.DisableBlock = true
	seq, err := hcd.Do(context.Background(), g, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Results) != len(B) || len(seq.Results) != len(B) {
		t.Fatalf("result counts: block %d, sequential %d", len(block.Results), len(seq.Results))
	}
	for i := range B {
		br, sr := block.Results[i], seq.Results[i]
		if !br.Converged || !sr.Converged {
			t.Fatalf("rhs %d: block %s, sequential %s", i, br.Outcome, sr.Outcome)
		}
		if r := residual(g, br.X, B[i]); r > 1e-5 {
			t.Errorf("rhs %d: block residual %v", i, r)
		}
		lo := int(math.Floor(0.9 * float64(sr.Iterations)))
		hi := int(math.Ceil(1.1*float64(sr.Iterations))) + 1
		if br.Iterations < lo || br.Iterations > hi {
			t.Errorf("rhs %d: block %d iterations vs sequential %d (outside ±10%%)",
				i, br.Iterations, sr.Iterations)
		}
	}
}

// TestDoBlockEngineDetaches: block results from an engine-backed request are
// copied out of the engine's packed buffers and survive the engine's next
// solve.
func TestDoBlockEngineDetaches(t *testing.T) {
	g := hcd.Grid2D(14, 14, nil, 1)
	rng := rand.New(rand.NewSource(32))
	eng, err := hcd.NewHierarchyEngine(g, hcd.DefaultHierarchyOptions(), hcd.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	B := [][]float64{meanFree(rng, g.N()), meanFree(rng, g.N())}
	resp, err := hcd.Do(context.Background(), g, hcd.SolveRequest{B: B, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]float64(nil), resp.Results[0].X...)
	// Another solve on the same engine overwrites the packed scratch.
	B2 := [][]float64{meanFree(rng, g.N()), meanFree(rng, g.N())}
	if _, err := hcd.Do(context.Background(), g, hcd.SolveRequest{B: B2, Engine: eng}); err != nil {
		t.Fatal(err)
	}
	for i := range saved {
		if resp.Results[0].X[i] != saved[i] {
			t.Fatal("block result aliased engine scratch: overwritten by the next solve")
		}
	}
	if r := residual(g, resp.Results[0].X, B[0]); r > 1e-5 {
		t.Errorf("detached result residual %v", r)
	}
}

// TestDoMultiRHSPartialFailure: a bad column no longer discards its
// neighbors — every column is attempted, completed columns keep their
// results, and the joined error still matches the wrapped sentinel.
func TestDoMultiRHSPartialFailure(t *testing.T) {
	g := hcd.Grid2D(10, 10, nil, 1)
	rng := rand.New(rand.NewSource(33))
	good1 := meanFree(rng, g.N())
	bad := make([]float64, g.N()-1) // wrong length
	good2 := meanFree(rng, g.N())
	req := hcd.SolveRequest{
		B:            [][]float64{good1, bad, good2},
		Precond:      hcd.PrecondSpec{Kind: hcd.PrecondJacobi},
		DisableBlock: true, // per-column errors need the sequential loop
	}
	resp, err := hcd.Do(context.Background(), g, req)
	if err == nil {
		t.Fatal("want an error for the malformed column")
	}
	if !errors.Is(err, hcd.ErrBadDimension) {
		t.Fatalf("error %v does not wrap ErrBadDimension", err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("want 3 results (completed columns preserved), got %d", len(resp.Results))
	}
	for _, i := range []int{0, 2} {
		if !resp.Results[i].Converged {
			t.Errorf("good column %d lost: outcome %s", i, resp.Results[i].Outcome)
		}
	}
	if resp.Results[1].Outcome != hcd.OutcomeUnknown {
		t.Errorf("failed column outcome %s, want unknown", resp.Results[1].Outcome)
	}
}
