package hcd

import (
	"io"

	"hcd/internal/gio"
)

// ReadEdgeList parses the plain edge-list format: one "u v w" line per edge
// (weight optional, default 1), '#' comments, and an optional "n <count>"
// header fixing the vertex count.
func ReadEdgeList(r io.Reader) (*Graph, error) { return gio.ReadEdgeList(r) }

// WriteEdgeList writes g in the edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error { return gio.WriteEdgeList(w, g) }

// ReadMatrixMarket parses a MatrixMarket coordinate matrix (real/integer/
// pattern, symmetric or general) as a weighted graph: off-diagonal entries
// become edges of weight |a_ij|, the diagonal is implied.
func ReadMatrixMarket(r io.Reader) (*Graph, error) { return gio.ReadMatrixMarket(r) }

// WriteMatrixMarket writes the Laplacian of g as a symmetric coordinate
// MatrixMarket matrix.
func WriteMatrixMarket(w io.Writer, g *Graph) error { return gio.WriteMatrixMarket(w, g) }
