package hcd

import (
	"context"
	"io"

	"hcd/internal/gio"
)

// ErrCorruptSnapshot is returned (wrapped) by the snapshot readers when a
// file is damaged or foreign: bad magic, checksum mismatch, truncation, or
// payloads failing structural validation. Callers distinguish it from plain
// I/O errors with errors.Is and respond by rebuilding, not retrying.
var ErrCorruptSnapshot = gio.ErrCorruptSnapshot

// ReadEdgeList parses the plain edge-list format: one "u v w" line per edge
// (weight optional, default 1), '#' comments, and an optional "n <count>"
// header fixing the vertex count.
func ReadEdgeList(r io.Reader) (*Graph, error) { return gio.ReadEdgeList(r) }

// WriteEdgeList writes g in the edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error { return gio.WriteEdgeList(w, g) }

// ReadMatrixMarket parses a MatrixMarket coordinate matrix (real/integer/
// pattern, symmetric or general) as a weighted graph: off-diagonal entries
// become edges of weight |a_ij|, the diagonal is implied.
func ReadMatrixMarket(r io.Reader) (*Graph, error) { return gio.ReadMatrixMarket(r) }

// WriteMatrixMarket writes the Laplacian of g as a symmetric coordinate
// MatrixMarket matrix.
func WriteMatrixMarket(w io.Writer, g *Graph) error { return gio.WriteMatrixMarket(w, g) }

// WriteGraphSnapshot writes g in the versioned, checksummed binary snapshot
// format — the durable form behind hcd-server's -state-dir.
func WriteGraphSnapshot(w io.Writer, g *Graph) error { return gio.WriteGraphSnapshot(w, g) }

// ReadGraphSnapshot reads a graph snapshot. Corruption comes back wrapping
// ErrCorruptSnapshot; underlying I/O errors pass through unwrapped.
func ReadGraphSnapshot(r io.Reader) (*Graph, error) { return gio.ReadGraphSnapshot(r) }

// WriteHierarchySnapshot persists g together with its built hierarchy. Only
// the fine graph and the per-level cluster assignments are stored; quotient
// graphs and the coarse factorization are recomputed deterministically on
// read, so a snapshot is a few times the graph's size, not the hierarchy's.
func WriteHierarchySnapshot(w io.Writer, g *Graph, h *Hierarchy) error {
	return gio.WriteHierarchySnapshot(w, g, h)
}

// ReadHierarchySnapshot restores a graph and its hierarchy from a snapshot
// without re-running any clustering. If the graph section verifies but the
// hierarchy portion is corrupt, the graph is returned alongside the error —
// callers can rebuild the hierarchy instead of losing everything.
func ReadHierarchySnapshot(ctx context.Context, r io.Reader) (*Graph, *Hierarchy, error) {
	return gio.ReadHierarchySnapshot(ctx, r)
}
