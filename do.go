package hcd

// The canonical solve entry point. Do executes one SolveRequest — one or
// many right-hand sides, a named iteration method, a preconditioner given as
// a spec, a prebuilt value, or a warm Engine session — and returns a
// SolveResponse with one SolveResult per right-hand side. Every other solve
// entry point in the package (Solve, SolvePCG, SolvePCGCtx, SolveCtx,
// SolveChebyshev, SolveChebyshevCtx, SolveResilient) is a thin wrapper over
// Do, so the CLI tools and the hcd-server handlers share one implementation.

import (
	"context"
	"errors"
	"fmt"

	"hcd/internal/obs"
	"hcd/internal/solver"
)

// SolveMethod names the iteration a SolveRequest runs.
type SolveMethod string

// Solve methods. The empty string defaults to PCG.
const (
	// SolveMethodPCG is preconditioned conjugate gradients — the default.
	SolveMethodPCG SolveMethod = "pcg"
	// SolveMethodChebyshev bootstraps spectrum bounds from a short PCG
	// probe on the first right-hand side, then runs inner-product-free
	// Chebyshev iteration on every right-hand side with the shared bounds.
	SolveMethodChebyshev SolveMethod = "chebyshev"
	// SolveMethodResilient walks the SolveResilient fallback ladder per
	// right-hand side, recording a ResilienceReport for each.
	SolveMethodResilient SolveMethod = "resilient"
)

// PrecondKind names a preconditioner construction for PrecondSpec.
type PrecondKind string

// Preconditioner kinds. The empty string defaults to the multilevel
// hierarchy — the batteries-included choice.
const (
	PrecondHierarchy PrecondKind = "hierarchy"
	PrecondNone      PrecondKind = "none"
	PrecondJacobi    PrecondKind = "jacobi"
	PrecondSteiner   PrecondKind = "steiner"
	PrecondTree      PrecondKind = "tree"
	PrecondSubgraph  PrecondKind = "subgraph"
)

// PrecondSpec describes a preconditioner to build for a solve. The zero
// value selects the default multilevel Steiner hierarchy.
type PrecondSpec struct {
	Kind PrecondKind
	// SizeCap is the cluster size cap for the steiner and hierarchy kinds
	// (0 selects the default, 4).
	SizeCap int
	// Seed drives the randomized constructions (0 selects the default, 1).
	Seed int64
	// Base selects the spanning tree for the tree and subgraph kinds.
	Base BaseTree
	// ExtraFraction is the subgraph kind's off-tree edge budget as a
	// fraction of n (0 selects the default, 0.25).
	ExtraFraction float64
	// Shards splits the clustering builds of the steiner and hierarchy
	// kinds into that many concurrent vertex-range shards (see
	// DecomposeOptions.Shards). 0 or 1 builds single-pass. Ignored when
	// Hierarchy is set — its own Shards field governs.
	Shards int
	// Hierarchy, when non-nil, fully configures the hierarchy kind and
	// overrides SizeCap/Seed/Shards.
	Hierarchy *HierarchyOptions
}

// NewPreconditioner builds the preconditioner a spec describes. PrecondNone
// returns (nil, nil): a nil Preconditioner means plain CG everywhere in this
// package. The context cancels hierarchy and clustering builds.
func NewPreconditioner(ctx context.Context, g *Graph, spec PrecondSpec) (Preconditioner, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch spec.Kind {
	case PrecondNone:
		return nil, nil
	case PrecondJacobi:
		return JacobiPreconditioner(g), nil
	case PrecondSteiner:
		res, err := DecomposeCtx(ctx, g, DecomposeOptions{
			Method: MethodFixedDegree, SizeCap: specSizeCap(spec), Seed: specSeed(spec),
			Shards: spec.Shards, SkipReport: true,
		})
		if err != nil {
			return nil, err
		}
		return NewSteinerPreconditioner(res.D)
	case PrecondTree:
		return NewTreePreconditioner(g, spec.Base, specSeed(spec))
	case PrecondSubgraph:
		popt := PlanarOptions{Base: spec.Base, ExtraFraction: spec.ExtraFraction, Seed: specSeed(spec)}
		if popt.ExtraFraction <= 0 {
			popt.ExtraFraction = DefaultPlanarOptions().ExtraFraction
		}
		res, err := NewSubgraphPreconditioner(g, popt, g.N())
		if err != nil {
			return nil, err
		}
		return res.P, nil
	case PrecondHierarchy, "":
		opt := DefaultHierarchyOptions()
		if spec.Hierarchy != nil {
			opt = *spec.Hierarchy
		} else {
			if spec.SizeCap >= 2 {
				opt.SizeCap = spec.SizeCap
			}
			if spec.Seed != 0 {
				opt.Seed = spec.Seed
			}
			opt.Shards = spec.Shards
		}
		return NewHierarchyCtx(ctx, g, opt)
	default:
		return nil, fmt.Errorf("hcd: unknown preconditioner kind %q: %w", spec.Kind, ErrInvalidInput)
	}
}

func specSizeCap(spec PrecondSpec) int {
	if spec.SizeCap >= 2 {
		return spec.SizeCap
	}
	return DefaultHierarchyOptions().SizeCap
}

func specSeed(spec PrecondSpec) int64 {
	if spec.Seed != 0 {
		return spec.Seed
	}
	return 1
}

// SolveRequest is the canonical description of one solve: one or more
// right-hand sides against a single graph Laplacian, an iteration method,
// and a preconditioner. Exactly one of the preconditioner fields is
// consulted, in order of precedence: Engine (a warm session whose operator
// and preconditioner are already built), M (a prebuilt Preconditioner
// value), then Precond (a spec built on demand by Do).
type SolveRequest struct {
	// B holds the right-hand sides, one solve each, all of length g.N().
	B [][]float64
	// Method selects the iteration ("" = PCG).
	Method SolveMethod
	// Precond describes the preconditioner to build when neither Engine
	// nor M is set. The zero value builds the multilevel hierarchy.
	Precond PrecondSpec
	// M, when non-nil, is used directly and Precond is ignored.
	M Preconditioner
	// Engine, when non-nil, runs the solves on a warm session (the
	// serving path: per-hierarchy engine pools). Result slices are copied
	// out of the engine's buffers, so they remain valid after the engine
	// is reused. Ignored by SolveMethodResilient, whose ladder builds its
	// own preconditioners.
	Engine *Engine
	// DisableBlock opts a multi-RHS PCG request out of the block solver
	// and back onto the sequential per-column loop. By default Do runs
	// k > 1 right-hand sides as one block solve — every matvec and
	// preconditioner traversal shared across columns, converged columns
	// deflating out — which is the fast path for batched traffic. Requests
	// with Options.Recovery enabled always take the sequential loop
	// (restart schedules are per-column).
	DisableBlock bool
	// Options configures the PCG iteration (and the Chebyshev method's
	// probe inherits its ProjectMean).
	Options SolveOptions
	// Chebyshev configures SolveMethodChebyshev (Iters is required).
	Chebyshev ChebyshevOptions
	// Resilience configures SolveMethodResilient (zero value = defaults).
	Resilience ResilienceOptions
}

// SolveResponse reports one Do call: per-right-hand-side results plus the
// method-specific extras.
type SolveResponse struct {
	// Results holds one SolveResult per right-hand side, in request order.
	// On error it still contains one entry per attempted column — completed
	// columns keep their results, failed columns carry zero-value entries —
	// so a partially failed batch loses nothing that finished.
	Results []SolveResult
	// Lmin, Lmax are the Chebyshev method's Ritz spectrum estimates from
	// the bootstrap probe, before widening.
	Lmin, Lmax float64
	// ProbeMetrics instruments the Chebyshev bootstrap probe.
	ProbeMetrics SolveMetrics
	// Resilience holds one attempt-trail report per right-hand side for
	// the resilient method.
	Resilience []ResilienceReport
}

// Do executes a SolveRequest against g's Laplacian and returns one result
// per right-hand side. It is the single solve implementation behind every
// wrapper in this package and behind the hcd-server solve handlers.
//
// Errors follow the wrapped-sentinel convention: dimension mismatches wrap
// ErrBadDimension, exhausted ladders wrap ErrNotConverged, a cancelled
// context surfaces via the per-result OutcomeCancelled (PCG/Chebyshev) or a
// wrapped context error (resilient). A multi-RHS PCG or Chebyshev request
// attempts every column even when one fails: the response carries a result
// per attempted column and the error joins the per-column failures
// (errors.Is still matches the wrapped sentinels through the join).
func Do(ctx context.Context, g *Graph, req SolveRequest) (*SolveResponse, error) {
	resp := &SolveResponse{}
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return resp, fmt.Errorf("hcd: Do: nil graph: %w", ErrInvalidInput)
	}
	if len(req.B) == 0 {
		return resp, fmt.Errorf("hcd: Do: no right-hand sides: %w", ErrInvalidInput)
	}
	method := req.Method
	if method == "" {
		method = SolveMethodPCG
	}
	// The resilient ladder opens its own root span per RHS
	// ("resilient/solve"); wrapping it here would only add a level.
	if method != SolveMethodResilient {
		var sp *obs.Span
		ctx, sp = obs.StartSpan(ctx, "solve/do")
		defer sp.End()
		if sp != nil {
			sp.Arg("method", string(method))
			sp.Arg("rhs", len(req.B))
		}
	}
	switch method {
	case SolveMethodPCG:
		return doPCG(ctx, g, req, resp)
	case SolveMethodChebyshev:
		return doChebyshev(ctx, g, req, resp)
	case SolveMethodResilient:
		for _, b := range req.B {
			res, rep, err := solveResilient(ctx, g, b, req.Resilience)
			resp.Results = append(resp.Results, res)
			resp.Resilience = append(resp.Resilience, rep)
			if err != nil {
				return resp, err
			}
		}
		return resp, nil
	default:
		return resp, fmt.Errorf("hcd: Do: unknown solve method %q: %w", req.Method, ErrInvalidInput)
	}
}

func doPCG(ctx context.Context, g *Graph, req SolveRequest, resp *SolveResponse) (*SolveResponse, error) {
	m := req.M
	if m == nil && req.Engine == nil {
		var err error
		m, err = NewPreconditioner(ctx, g, req.Precond)
		if err != nil {
			return resp, err
		}
	}
	// Multi-RHS requests run as one block solve unless opted out: every
	// matvec and preconditioner traversal is shared across the columns and
	// converged columns deflate out of the active block (see
	// solver.BlockPCGCtx). Recovery restarts are per-column schedules, so
	// recovery-enabled requests stay on the sequential loop.
	if len(req.B) > 1 && !req.DisableBlock && req.Options.Recovery.MaxRestarts == 0 {
		var results []SolveResult
		var err error
		if req.Engine != nil {
			results, err = req.Engine.SolveBlock(ctx, req.B, req.Options)
			for i := range results {
				results[i] = detachResult(results[i])
			}
		} else {
			results, err = solver.BlockPCGCtx(ctx, solver.LapOperator(g), m, req.B, req.Options)
		}
		resp.Results = append(resp.Results, results...)
		return resp, err
	}
	var errs []error
	for i, b := range req.B {
		var res SolveResult
		var err error
		if req.Engine != nil {
			res, err = req.Engine.SolveWith(ctx, b, req.Options)
			res = detachResult(res)
		} else {
			res, err = solver.PCGCtx(ctx, solver.LapOperator(g), m, b, req.Options)
		}
		resp.Results = append(resp.Results, res)
		if err != nil {
			errs = append(errs, fmt.Errorf("rhs %d: %w", i, err))
		}
	}
	return resp, errors.Join(errs...)
}

func doChebyshev(ctx context.Context, g *Graph, req SolveRequest, resp *SolveResponse) (*SolveResponse, error) {
	opt := req.Chebyshev
	if opt.Iters <= 0 {
		return resp, fmt.Errorf("hcd: ChebyshevOptions.Iters must be positive")
	}
	if opt.ProbeIters <= 0 {
		opt.ProbeIters = 40
	}
	if opt.WidenLow <= 0 {
		opt.WidenLow = 0.8
	}
	if opt.WidenHigh <= 0 {
		opt.WidenHigh = 1.2
	}
	m := req.M
	if m == nil && req.Engine == nil {
		var err error
		m, err = NewPreconditioner(ctx, g, req.Precond)
		if err != nil {
			return resp, err
		}
	}
	a := solver.LapOperator(g)
	probeOpt := solver.Options{Tol: 1e-12, MaxIter: opt.ProbeIters, ProjectMean: true}
	var probe SolveResult
	var err error
	if req.Engine != nil {
		probe, err = req.Engine.SolveWith(ctx, req.B[0], probeOpt)
	} else {
		probe, err = solver.PCGCtx(ctx, a, m, req.B[0], probeOpt)
	}
	if err != nil {
		return resp, err
	}
	if probe.Outcome == OutcomeCancelled {
		resp.Results = append(resp.Results, detachResult(probe))
		resp.ProbeMetrics = probe.Metrics
		return resp, fmt.Errorf("hcd: chebyshev probe cancelled: %w", ctx.Err())
	}
	lmin, lmax, err := solver.SpectrumEstimate(probe.Alphas, probe.Betas)
	if err != nil {
		return resp, err
	}
	resp.Lmin, resp.Lmax, resp.ProbeMetrics = lmin, lmax, probe.Metrics
	iterOpt := solver.Options{MaxIter: opt.Iters, ProjectMean: true, Tol: opt.Tol, Observer: opt.Observer}
	var errs []error
	for i, b := range req.B {
		var res SolveResult
		if req.Engine != nil {
			res, err = req.Engine.SolveChebyshev(ctx, b, lmin*opt.WidenLow, lmax*opt.WidenHigh, iterOpt)
			res = detachResult(res)
		} else {
			res, err = solver.ChebyshevCtx(ctx, a, m, b, lmin*opt.WidenLow, lmax*opt.WidenHigh, iterOpt)
		}
		resp.Results = append(resp.Results, res)
		if err != nil {
			errs = append(errs, fmt.Errorf("rhs %d: %w", i, err))
		}
	}
	return resp, errors.Join(errs...)
}

// detachResult copies the slices of an engine-produced result out of the
// engine's reusable buffers, so the result survives the engine's return to a
// pool and its next solve.
func detachResult(res SolveResult) SolveResult {
	res.X = append([]float64(nil), res.X...)
	res.Residuals = append([]float64(nil), res.Residuals...)
	res.Alphas = append([]float64(nil), res.Alphas...)
	res.Betas = append([]float64(nil), res.Betas...)
	return res
}
