// Benchmarks regenerating the paper's evaluation artifacts; the mapping to
// tables/figures lives in DESIGN.md §4 and the measured numbers in
// EXPERIMENTS.md. `go test -bench=. -benchmem` runs everything;
// cmd/hcd-experiments prints the full row/series form.
package hcd_test

import (
	"math/rand"
	"testing"

	"hcd"
)

func benchRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	s := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		s += b[i]
	}
	for i := range b {
		b[i] -= s / float64(n)
	}
	return b
}

// fig6Graph is the Figure 6 instance: a weighted 3D grid with large local
// and global weight variation (the paper's OCT-derived regime).
func fig6Graph() *hcd.Graph {
	return hcd.OCT3D(20, 20, 20, hcd.DefaultOCTOptions())
}

// E1 / Figure 6: Steiner-preconditioned PCG solve.
func BenchmarkFig6SteinerPCG(b *testing.B) {
	g := fig6Graph()
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := hcd.SolvePCG(g, rhs, p, hcd.DefaultSolveOptions())
		if !res.Converged {
			b.Fatal("not converged")
		}
	}
}

// E1 / Figure 6: subgraph-preconditioned PCG solve (the baseline curve).
func BenchmarkFig6SubgraphPCG(b *testing.B) {
	g := fig6Graph()
	opt := hcd.DefaultPlanarOptions()
	opt.ExtraFraction = 0.12
	sub, err := hcd.NewSubgraphPreconditioner(g, opt, g.N())
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := hcd.SolvePCG(g, rhs, sub.P, hcd.DefaultSolveOptions())
		if !res.Converged {
			b.Fatal("not converged")
		}
	}
}

// E2 / Remark 1: parallel clustering construction vs maximum-weight
// spanning tree construction on a weighted 3D grid. cmd/hcd-experiments
// runs the paper's full 10⁶-vertex instance; the benchmark uses 40³.
func BenchmarkRemark1Clustering(b *testing.B) {
	g := hcd.Grid3D(40, 40, 40, hcd.LognormalWeights(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposeFixedDegree(g, 4, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemark1MaxSpanningTree(b *testing.B) {
	g := hcd.Grid3D(40, 40, 40, hcd.LognormalWeights(1), 1)
	opt := hcd.DefaultPlanarOptions()
	opt.ExtraFraction = 0 // bare spanning tree, as in the paper's comparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposePlanar(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// E3 / Theorem 2.1: tree decomposition throughput.
func BenchmarkTreeDecomposition100k(b *testing.B) {
	g := hcd.RandomTree(100000, hcd.UniformWeights(0.1, 10), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposeTree(g); err != nil {
			b.Fatal(err)
		}
	}
}

// E4 / Theorem 2.2: full planar pipeline.
func BenchmarkPlanarDecomposition(b *testing.B) {
	g := hcd.PlanarMesh(100, 100, hcd.LognormalWeights(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposePlanar(g, hcd.DefaultPlanarOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 / Theorem 3.5: support-number measurement cost.
func BenchmarkTheorem35SupportProbe(b *testing.B) {
	g := hcd.Grid3D(12, 12, 12, hcd.LognormalWeights(1), 1)
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N(), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.MeasureSupport(g, p, rhs, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 / Theorem 4.1: eigenpair computation + cluster alignment.
func BenchmarkSpectralAlignment(b *testing.B) {
	g := hcd.Grid2D(40, 40, hcd.LognormalWeights(1), 1)
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, vecs, err := hcd.SmallestEigenpairs(g, 3, 60, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range vecs {
			_ = hcd.Alignment(d, v)
		}
	}
}

// E7 / A3: cluster-size cap sweep of the Section 3.1 clustering.
func BenchmarkFixedDegreeK2(b *testing.B) { benchFixedDegree(b, 2) }
func BenchmarkFixedDegreeK4(b *testing.B) { benchFixedDegree(b, 4) }
func BenchmarkFixedDegreeK8(b *testing.B) { benchFixedDegree(b, 8) }

func benchFixedDegree(b *testing.B, k int) {
	g := hcd.Grid3D(24, 24, 24, hcd.LognormalWeights(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposeFixedDegree(g, k, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// E8: multilevel Steiner hierarchy — build and full solve.
func BenchmarkHierarchyBuild(b *testing.B) {
	g := hcd.OCT3D(20, 20, 20, hcd.DefaultOCTOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.NewHierarchy(g, hcd.DefaultHierarchyOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchySolveOCT(b *testing.B) {
	g := hcd.OCT3D(20, 20, 20, hcd.DefaultOCTOptions())
	h, err := hcd.NewHierarchy(g, hcd.DefaultHierarchyOptions())
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N(), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := hcd.SolvePCG(g, rhs, h, hcd.DefaultSolveOptions())
		if !res.Converged {
			b.Fatal("not converged")
		}
	}
}

// E9 / Theorem 2.3: minor-free pipeline on a low-stretch base tree.
func BenchmarkMinorFreeDecomposition(b *testing.B) {
	g := hcd.Grid2D(80, 80, hcd.LognormalWeights(1.5), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposeMinorFree(g, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// A1: base-tree ablation inside the Theorem 2.2 pipeline.
func BenchmarkPlanarMaxWeightBase(b *testing.B)  { benchPlanarBase(b, hcd.MaxWeightTree) }
func BenchmarkPlanarLowStretchBase(b *testing.B) { benchPlanarBase(b, hcd.LowStretchTree) }

func benchPlanarBase(b *testing.B, base hcd.BaseTree) {
	g := hcd.PlanarMesh(60, 60, hcd.LognormalWeights(1), 1)
	opt := hcd.DefaultPlanarOptions()
	opt.Base = base
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposePlanar(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}
