// Benchmarks regenerating the paper's evaluation artifacts; the mapping to
// tables/figures lives in DESIGN.md §4 and the measured numbers in
// EXPERIMENTS.md. `go test -bench=. -benchmem` runs everything;
// cmd/hcd-experiments prints the full row/series form.
package hcd_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"hcd"
)

func benchRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	s := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		s += b[i]
	}
	for i := range b {
		b[i] -= s / float64(n)
	}
	return b
}

// fig6Graph is the Figure 6 instance: a weighted 3D grid with large local
// and global weight variation (the paper's OCT-derived regime).
func fig6Graph() *hcd.Graph {
	return hcd.OCT3D(20, 20, 20, hcd.DefaultOCTOptions())
}

// E1 / Figure 6: Steiner-preconditioned PCG solve.
func BenchmarkFig6SteinerPCG(b *testing.B) {
	g := fig6Graph()
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hcd.SolvePCG(g, rhs, p, hcd.DefaultSolveOptions())
		if err != nil || !res.Converged {
			b.Fatal("not converged")
		}
	}
}

// E1 / Figure 6: subgraph-preconditioned PCG solve (the baseline curve).
func BenchmarkFig6SubgraphPCG(b *testing.B) {
	g := fig6Graph()
	opt := hcd.DefaultPlanarOptions()
	opt.ExtraFraction = 0.12
	sub, err := hcd.NewSubgraphPreconditioner(g, opt, g.N())
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hcd.SolvePCG(g, rhs, sub.P, hcd.DefaultSolveOptions())
		if err != nil || !res.Converged {
			b.Fatal("not converged")
		}
	}
}

// E2 / Remark 1: parallel clustering construction vs maximum-weight
// spanning tree construction on a weighted 3D grid. cmd/hcd-experiments
// runs the paper's full 10⁶-vertex instance; the benchmark uses 40³.
func BenchmarkRemark1Clustering(b *testing.B) {
	g := hcd.Grid3D(40, 40, 40, hcd.LognormalWeights(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposeFixedDegree(g, 4, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemark1MaxSpanningTree(b *testing.B) {
	g := hcd.Grid3D(40, 40, 40, hcd.LognormalWeights(1), 1)
	opt := hcd.DefaultPlanarOptions()
	opt.ExtraFraction = 0 // bare spanning tree, as in the paper's comparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposePlanar(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// E3 / Theorem 2.1: tree decomposition throughput.
func BenchmarkTreeDecomposition100k(b *testing.B) {
	g := hcd.RandomTree(100000, hcd.UniformWeights(0.1, 10), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposeTree(g); err != nil {
			b.Fatal(err)
		}
	}
}

// E4 / Theorem 2.2: full planar pipeline.
func BenchmarkPlanarDecomposition(b *testing.B) {
	g := hcd.PlanarMesh(100, 100, hcd.LognormalWeights(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposePlanar(g, hcd.DefaultPlanarOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 / Theorem 3.5: support-number measurement cost.
func BenchmarkTheorem35SupportProbe(b *testing.B) {
	g := hcd.Grid3D(12, 12, 12, hcd.LognormalWeights(1), 1)
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N(), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.MeasureSupport(g, p, rhs, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 / Theorem 4.1: eigenpair computation + cluster alignment.
func BenchmarkSpectralAlignment(b *testing.B) {
	g := hcd.Grid2D(40, 40, hcd.LognormalWeights(1), 1)
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, vecs, err := hcd.SmallestEigenpairs(g, 3, 60, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range vecs {
			_ = hcd.Alignment(d, v)
		}
	}
}

// E7 / A3: cluster-size cap sweep of the Section 3.1 clustering.
func BenchmarkFixedDegreeK2(b *testing.B) { benchFixedDegree(b, 2) }
func BenchmarkFixedDegreeK4(b *testing.B) { benchFixedDegree(b, 4) }
func BenchmarkFixedDegreeK8(b *testing.B) { benchFixedDegree(b, 8) }

func benchFixedDegree(b *testing.B, k int) {
	g := hcd.Grid3D(24, 24, 24, hcd.LognormalWeights(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposeFixedDegree(g, k, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// E8: multilevel Steiner hierarchy — build and full solve.
func BenchmarkHierarchyBuild(b *testing.B) {
	g := hcd.OCT3D(20, 20, 20, hcd.DefaultOCTOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.NewHierarchy(g, hcd.DefaultHierarchyOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchySolveOCT(b *testing.B) {
	g := hcd.OCT3D(20, 20, 20, hcd.DefaultOCTOptions())
	h, err := hcd.NewHierarchy(g, hcd.DefaultHierarchyOptions())
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N(), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hcd.SolvePCG(g, rhs, h, hcd.DefaultSolveOptions())
		if err != nil || !res.Converged {
			b.Fatal("not converged")
		}
	}
}

// E9 / Theorem 2.3: minor-free pipeline on a low-stretch base tree.
func BenchmarkMinorFreeDecomposition(b *testing.B) {
	g := hcd.Grid2D(80, 80, hcd.LognormalWeights(1.5), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposeMinorFree(g, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// P1: parallel solver engine — row-blocked Laplacian matvec vs the serial
// reference on a ≥100k-vertex 3D grid, across worker counts. The parallel
// path falls back to the serial loop when GOMAXPROCS is 1, so the
// gomaxprocs-1 case measures the fallback's overhead (≈ none).
func matvecGraph() *hcd.Graph {
	return hcd.Grid3D(48, 48, 48, hcd.LognormalWeights(1), 1) // n = 110592
}

func BenchmarkParallelMatvec(b *testing.B) {
	g := matvecGraph()
	x := benchRHS(g.N(), 1)
	dst := make([]float64, g.N())
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.LapMulSerial(dst, x)
		}
	})
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("gomaxprocs-%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.LapMul(dst, x)
			}
		})
	}
}

// P2: Jacobi-PCG on the 100k-vertex grid, fixed 60-iteration work unit, at
// 1, 2, and all cores. All level-1 kernels and the matvec route through the
// parallel engine; the speedup over gomaxprocs-1 is the engine's scaling.
func benchPCGCores(b *testing.B, procs int) {
	g := matvecGraph()
	rhs := benchRHS(g.N(), 2)
	opt := hcd.DefaultSolveOptions()
	opt.Tol = 1e-30 // unreachable: fixed 60-iteration work unit
	opt.MaxIter = 60
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	m := hcd.JacobiPreconditioner(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hcd.SolvePCG(g, rhs, m, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Iterations != 60 {
			b.Fatalf("expected 60 iterations, ran %d (%v)", res.Iterations, res.Outcome)
		}
	}
}

func BenchmarkPCGGrid100k1Core(b *testing.B)  { benchPCGCores(b, 1) }
func BenchmarkPCGGrid100k2Cores(b *testing.B) { benchPCGCores(b, 2) }
func BenchmarkPCGGrid100kAllCores(b *testing.B) {
	benchPCGCores(b, runtime.NumCPU())
}

// P3: warm engine solves allocate nothing (b.ReportAllocs shows 0 allocs/op
// once the first solve has sized the scratch buffers).
func BenchmarkEngineWarmSolves(b *testing.B) {
	g := hcd.Grid2D(64, 64, hcd.LognormalWeights(1), 1)
	eng, err := hcd.NewEngine(g, hcd.JacobiPreconditioner(g), hcd.DefaultSolveOptions())
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N(), 3)
	if _, err := eng.Solve(nil, rhs); err != nil { // warm up the buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Solve(nil, rhs)
		if err != nil || !res.Converged {
			b.Fatal("warm solve failed")
		}
	}
}

// P9: multi-RHS throughput of the block PCG path — one SpMM traversal and
// one block V-cycle serve all k columns per iteration — against k sequential
// warm-engine solves on the same hierarchy. Pinned to GOMAXPROCS=1 so the
// measured win is traversal fusion, not parallelism; the rhs/sec metric is
// what BENCH_solve.json records.
func BenchmarkBlockSolve(b *testing.B) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	g := hcd.Grid3D(32, 32, 32, hcd.LognormalWeights(1), 1)
	eng, err := hcd.NewHierarchyEngine(g, hcd.DefaultHierarchyOptions(), hcd.DefaultSolveOptions())
	if err != nil {
		b.Fatal(err)
	}
	makeB := func(k int) [][]float64 {
		B := make([][]float64, k)
		for i := range B {
			B[i] = benchRHS(g.N(), int64(i+1))
		}
		return B
	}
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("block/k=%d", k), func(b *testing.B) {
			B := makeB(k)
			req := hcd.SolveRequest{B: B, Engine: eng}
			if _, err := hcd.Do(context.Background(), g, req); err != nil {
				b.Fatal(err) // warm up the block scratch
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := hcd.Do(context.Background(), g, req)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range resp.Results {
					if !r.Converged {
						b.Fatal("block solve did not converge")
					}
				}
			}
			b.ReportMetric(float64(k*b.N)/b.Elapsed().Seconds(), "rhs/sec")
		})
	}
	b.Run("seq/k=16", func(b *testing.B) {
		B := makeB(16)
		if _, err := eng.Solve(nil, B[0]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, col := range B {
				res, serr := eng.Solve(nil, col)
				if serr != nil || !res.Converged {
					b.Fatal("sequential solve failed")
				}
			}
		}
		b.ReportMetric(float64(16*b.N)/b.Elapsed().Seconds(), "rhs/sec")
	})
}

// P4: decomposition quality measurement — the parallel per-cluster fan-out
// of Evaluate against the sequential reference on a 3D lognormal grid
// (~3.5k clusters). On multi-core machines the parallel path should win;
// results are bit-identical either way.
func BenchmarkEvaluate(b *testing.B) {
	g := hcd.Grid3D(24, 24, 24, hcd.LognormalWeights(1), 1)
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hcd.Evaluate(d)
	}
}

// P4: unified decomposition pipeline end to end through DecomposeCtx,
// including the evaluate stage — what one `DecomposeCtx` call costs per
// method on a 3D lognormal grid.
func benchDecomposePipeline(b *testing.B, method hcd.DecomposeMethod, side int) {
	g := hcd.Grid3D(side, side, side, hcd.LognormalWeights(1), 1)
	opt := hcd.DefaultDecomposeOptions(method)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hcd.DecomposeCtx(ctx, g, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Metrics.Stages) == 0 {
			b.Fatal("no build metrics recorded")
		}
	}
}

func BenchmarkDecomposePipelineFixedDegree(b *testing.B) {
	benchDecomposePipeline(b, hcd.MethodFixedDegree, 24)
}

func BenchmarkDecomposePipelinePlanar(b *testing.B) {
	benchDecomposePipeline(b, hcd.MethodPlanar, 16)
}

// A1: base-tree ablation inside the Theorem 2.2 pipeline.
func BenchmarkPlanarMaxWeightBase(b *testing.B)  { benchPlanarBase(b, hcd.MaxWeightTree) }
func BenchmarkPlanarLowStretchBase(b *testing.B) { benchPlanarBase(b, hcd.LowStretchTree) }

func benchPlanarBase(b *testing.B, base hcd.BaseTree) {
	g := hcd.PlanarMesh(60, 60, hcd.LognormalWeights(1), 1)
	opt := hcd.DefaultPlanarOptions()
	opt.Base = base
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcd.DecomposePlanar(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}
