package hcd_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"hcd"
)

func TestSolveChebyshev(t *testing.T) {
	g := hcd.Grid2D(12, 12, hcd.LognormalWeights(1), 1)
	rng := rand.New(rand.NewSource(1))
	b := meanFree(rng, g.N())
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		t.Fatal(err)
	}
	x, hist, err := hcd.SolveChebyshev(g, b, p, 80)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] > hist[0]*1e-5 {
		t.Errorf("Chebyshev residual %v of initial %v", hist[len(hist)-1], hist[0])
	}
	if r := residual(g, x, b); r > 1e-4 {
		t.Errorf("residual inf-norm %v", r)
	}
}

func TestCutFractionReported(t *testing.T) {
	g := hcd.Grid2D(10, 10, nil, 1)
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := hcd.Evaluate(d)
	if rep.CutFraction <= 0 || rep.CutFraction >= 1 {
		t.Errorf("CutFraction = %v", rep.CutFraction)
	}
	// One single cluster → no cut.
	single := &hcd.Decomposition{G: g, Assign: make([]int, g.N()), Count: 1}
	if cf := hcd.Evaluate(single).CutFraction; cf != 0 {
		t.Errorf("single-cluster CutFraction = %v", cf)
	}
}

func TestDecomposeSpectralFacade(t *testing.T) {
	g := hcd.Grid2D(10, 10, hcd.LognormalWeights(1), 2)
	d, st, err := hcd.DecomposeSpectral(g, hcd.DefaultSpectralCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := hcd.Validate(d); err != nil {
		t.Fatal(err)
	}
	if st.Splits == 0 {
		t.Error("no splits recorded")
	}
	// The paper's contrast: bottom-up clustering guarantees ρ ≥ 2 with no
	// eigensolves; top-down used st.EigenCalls of them.
	if st.EigenCalls == 0 {
		t.Error("no eigensolves recorded")
	}
}

func TestBuildLaminarFacade(t *testing.T) {
	g := hcd.Grid2D(14, 14, hcd.LognormalWeights(1), 3)
	l, err := hcd.BuildLaminar(g, 4, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Depth() < 2 {
		t.Fatalf("depth %d", l.Depth())
	}
	ok, err := l.Refines(0, l.Depth()-1)
	if err != nil || !ok {
		t.Errorf("refinement failed: %v %v", ok, err)
	}
	d, err := l.ComposedAt(l.Depth() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := hcd.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWalkFacade(t *testing.T) {
	g := hcd.Grid2D(8, 8, hcd.LognormalWeights(1), 4)
	w, err := hcd.NewRandomWalk(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := w.Dirac(5)
	w.Evolve(p, 10)
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	mass := hcd.ClusterMass(d, p)
	tot := 0.0
	for _, m := range mass {
		tot += m
	}
	if math.Abs(tot-1) > 1e-12 {
		t.Errorf("cluster mass sums to %v", tot)
	}
	if psi := hcd.BoundaryRatio(d, 0); psi <= 0 || psi >= 1 {
		t.Errorf("ψ = %v", psi)
	}
	pi, err := w.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if tv := hcd.TotalVariation(p, pi); tv < 0 || tv > 1 {
		t.Errorf("TV = %v", tv)
	}
}

func TestIORoundTripFacade(t *testing.T) {
	g := hcd.PlanarMesh(6, 6, hcd.LognormalWeights(1), 5)
	var buf bytes.Buffer
	if err := hcd.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := hcd.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Error("edge-list round trip mismatch")
	}
	buf.Reset()
	if err := hcd.WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err = hcd.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Error("MatrixMarket round trip mismatch")
	}
}

func TestMatchedReductionSubgraph(t *testing.T) {
	g := hcd.OCT3D(10, 10, 10, hcd.DefaultOCTOptions())
	target := 4.0
	sub, err := hcd.NewSubgraphPreconditionerMatched(g, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(g.N()) / float64(sub.CoreSize)
	if got < target/2 || got > target*2 {
		t.Errorf("matched reduction %v, target %v (core %d of %d)", got, target, sub.CoreSize, g.N())
	}
	if _, err := hcd.NewSubgraphPreconditionerMatched(g, 1, 1); err == nil {
		t.Error("target reduction 1 accepted")
	}
}

func TestTreePreconditioner(t *testing.T) {
	g := hcd.Grid2D(14, 14, hcd.LognormalWeights(1), 3)
	rng := rand.New(rand.NewSource(7))
	b := meanFree(rng, g.N())
	for _, base := range []hcd.BaseTree{hcd.MaxWeightTree, hcd.LowStretchTree} {
		p, err := hcd.NewTreePreconditioner(g, base, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := hcd.SolvePCG(g, b, p, hcd.DefaultSolveOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("base %d: tree-PCG did not converge (%d iters)", base, res.Iterations)
		}
		if r := residual(g, res.X, b); r > 1e-5 {
			t.Errorf("base %d: residual %v", base, r)
		}
	}
	if _, err := hcd.NewTreePreconditioner(g, hcd.BaseTree(99), 1); err == nil {
		t.Error("unknown base accepted")
	}
}

// Preconditioner strength ordering on a hard instance: tree < subgraph <
// Steiner hierarchy in iteration counts, the paper's Figure 6 narrative
// extended one baseline down.
func TestPreconditionerLadder(t *testing.T) {
	g := hcd.OCT3D(8, 8, 16, hcd.DefaultOCTOptions())
	rng := rand.New(rand.NewSource(9))
	b := meanFree(rng, g.N())
	tp, err := hcd.NewTreePreconditioner(g, hcd.MaxWeightTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := hcd.NewSubgraphPreconditioner(g, hcd.DefaultPlanarOptions(), g.N())
	if err != nil {
		t.Fatal(err)
	}
	h, err := hcd.NewHierarchy(g, hcd.DefaultHierarchyOptions())
	if err != nil {
		t.Fatal(err)
	}
	it := func(p hcd.Preconditioner) int {
		res, err := hcd.SolvePCG(g, b, p, hcd.DefaultSolveOptions())
		if err != nil || !res.Converged {
			return 1 << 30
		}
		return res.Iterations
	}
	tree, subg, hier := it(tp), it(sub.P), it(h)
	t.Logf("iterations: tree=%d subgraph=%d hierarchy=%d", tree, subg, hier)
	if !(hier <= subg && subg <= tree) {
		t.Errorf("expected hierarchy ≤ subgraph ≤ tree, got %d %d %d", hier, subg, tree)
	}
}

func TestGridSubgraphPreconditioner(t *testing.T) {
	side := 9
	g := hcd.Grid3D(side, side, side, hcd.LognormalWeights(1), 2)
	sub, err := hcd.NewGridSubgraphPreconditioner(g, side, side, side, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Miniaturization leaves roughly the block-interface vertices.
	if sub.CoreSize <= 0 || sub.CoreSize >= g.N()/2 {
		t.Errorf("core size %d of %d", sub.CoreSize, g.N())
	}
	rng := rand.New(rand.NewSource(5))
	b := meanFree(rng, g.N())
	res, err := hcd.SolvePCG(g, b, sub.P, hcd.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("miniaturized subgraph PCG did not converge (%d iters)", res.Iterations)
	}
	if _, err := hcd.NewGridSubgraphPreconditioner(g, side+1, side, side, 3); err == nil {
		t.Error("wrong dims accepted")
	}
}

func TestResistanceComputerFacade(t *testing.T) {
	// Unit square: R across one side = (1·3)/(1+3) = 3/4.
	g, err := hcd.NewGraph(4, []hcd.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 3, V: 0, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := hcd.NewResistanceComputer(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Between(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.75) > 1e-8 {
		t.Errorf("R = %v, want 0.75", r)
	}
}

func TestAgreementFacade(t *testing.T) {
	rep, err := hcd.Agreement([]int{0, 0, 1}, []int{7, 7, 9})
	if err != nil || rep.Purity != 1 || rep.RandIndex != 1 {
		t.Errorf("agreement: %+v %v", rep, err)
	}
}

// End-to-end: decompose a graph loaded from a serialized form, solve on it.
func TestLoadDecomposeSolvePipeline(t *testing.T) {
	orig := hcd.OCT3D(6, 6, 6, hcd.DefaultOCTOptions())
	var buf bytes.Buffer
	if err := hcd.WriteMatrixMarket(&buf, orig); err != nil {
		t.Fatal(err)
	}
	g, err := hcd.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	b := meanFree(rng, g.N())
	res, err := hcd.Solve(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("solve on round-tripped graph did not converge")
	}
}
