package hcd

// The decomposition pipeline: every construction of the paper — Theorem 2.1
// trees, the Theorem 2.2/2.3 sparse-core pipelines, the Section 3.1
// fixed-degree clustering, and the top-down spectral baseline — is reachable
// through one context-aware entry point, DecomposeCtx, which runs the
// method's stages under a decomp.Pipeline and reports per-stage build
// metrics. The per-method facade functions (DecomposeTree, DecomposePlanar,
// DecomposeFixedDegree, ...) are thin wrappers over this path.

import (
	"context"
	"fmt"

	"hcd/internal/decomp"
	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/sparsify"
	"hcd/internal/spectralcut"
)

// DecomposeMethod selects which construction DecomposeCtx runs.
type DecomposeMethod int

const (
	// MethodTree: Theorem 2.1 on a tree or forest (ρ ≥ 6/5, φ ≥ 1/3).
	MethodTree DecomposeMethod = iota
	// MethodPlanar: the Theorem 2.2 pipeline — sparsify over a max-weight
	// base tree, strip/cut the core, tree-decompose, rebind to g.
	MethodPlanar
	// MethodMinorFree: the Theorem 2.3 variant — the same pipeline over an
	// AKPW low-stretch base tree.
	MethodMinorFree
	// MethodFixedDegree: the Section 3.1 perturb/heaviest-edge/split
	// clustering (ρ ≥ 2).
	MethodFixedDegree
	// MethodSpectral: the recursive sweep-cut baseline
	// (Kannan–Vempala–Vetta style).
	MethodSpectral
)

// String names the method for logs and metrics labels.
func (m DecomposeMethod) String() string {
	switch m {
	case MethodTree:
		return "tree"
	case MethodPlanar:
		return "planar"
	case MethodMinorFree:
		return "minor-free"
	case MethodFixedDegree:
		return "fixed-degree"
	case MethodSpectral:
		return "spectral"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// BuildMetrics reports the per-stage costs of one decomposition build — the
// construction-side mirror of SolveMetrics.
type BuildMetrics = decomp.BuildMetrics

// StageMetrics is one named stage's wall time, output size, and scratch
// allocation count inside a BuildMetrics.
type StageMetrics = decomp.StageMetrics

// ErrBuildCancelled: a decomposition build was stopped by its context.
// Errors carrying it also wrap the context's own error (context.Canceled or
// context.DeadlineExceeded), so either sentinel works with errors.Is.
var ErrBuildCancelled = decomp.ErrBuildCancelled

// DecomposeOptions configures DecomposeCtx. Method selects the construction;
// the remaining fields apply to the methods noted on each. The zero value
// runs MethodTree; use DefaultDecomposeOptions for per-method defaults.
type DecomposeOptions struct {
	Method DecomposeMethod

	// Parallel fans the Theorem 2.1 per-bridge case analysis across cores
	// (MethodTree only; results are identical to serial).
	Parallel bool

	// SizeCap bounds cluster sizes for MethodFixedDegree (must be ≥ 2).
	SizeCap int

	// Shards splits the MethodFixedDegree build into that many
	// contiguous vertex-range shards of balanced adjacency mass, clustered
	// concurrently and stitched deterministically at the boundary — the
	// scaling path for ≥10⁶-vertex graphs. 0 or 1 runs the single-pass
	// build (bit-identical to pre-shard behavior); values larger than the
	// graph supports are clamped. The result is a deterministic function
	// of (graph, options), independent of GOMAXPROCS.
	Shards int

	// Seed drives the edge perturbation (MethodFixedDegree), the AKPW tree
	// and off-tree selection (MethodPlanar/MethodMinorFree), and the
	// eigensolves (MethodSpectral).
	Seed int64

	// Base selects the spanning tree for MethodPlanar; MethodMinorFree
	// always uses LowStretchTree.
	Base BaseTree

	// ExtraFraction is the off-tree edge budget of the sparse pipelines, as
	// a fraction of n (MethodPlanar/MethodMinorFree). Zero keeps the bare
	// tree.
	ExtraFraction float64

	// Spectral configures MethodSpectral.
	Spectral SpectralCutOptions

	// SkipReport omits the final evaluate stage; DecomposeResult.Report
	// stays zero. The per-method wrapper functions set it to preserve their
	// historical cost profile.
	SkipReport bool
}

// DefaultDecomposeOptions returns the standard settings for a method: size
// cap 4 (fixed-degree), n/4 extra edges on the method's base tree (sparse
// pipelines), target conductance 0.1 (spectral), seed 1.
func DefaultDecomposeOptions(m DecomposeMethod) DecomposeOptions {
	opt := DecomposeOptions{Method: m, Seed: 1}
	switch m {
	case MethodFixedDegree:
		opt.SizeCap = 4
	case MethodPlanar:
		opt.Base = MaxWeightTree
		opt.ExtraFraction = 0.25
	case MethodMinorFree:
		opt.Base = LowStretchTree
		opt.ExtraFraction = 0.25
	case MethodSpectral:
		opt.Spectral = DefaultSpectralCutOptions()
	}
	return opt
}

// DecomposeResult is the uniform output of DecomposeCtx: the decomposition,
// its quality report (unless SkipReport), and the per-stage build metrics.
// The trailing fields carry method-specific extras and are zero for methods
// that do not produce them.
type DecomposeResult struct {
	D       *Decomposition
	Report  Report       // zero if DecomposeOptions.SkipReport
	Metrics BuildMetrics // per-stage wall time, sizes, scratch allocations

	// Sparse-pipeline extras (MethodPlanar/MethodMinorFree).
	B                  *Graph // the subgraph the decomposition was computed on
	CoreSize, CutEdges int    // |W| and |C| of the strip/cut phase
	AvgStretch         float64

	// SpectralStats reports MethodSpectral's work profile.
	SpectralStats SpectralCutStats

	// ShardStats reports the sharded build's boundary work
	// (MethodFixedDegree with Shards > 1): boundary edges, stitch
	// candidates, merges, rejections.
	ShardStats ShardStats
}

// ShardStats summarizes the boundary work of a sharded fixed-degree build.
type ShardStats = decomp.ShardStats

// DecomposeCtx decomposes g with the method opt selects, under a context.
// Each stage of the build (base tree, sparsify, strip/cut core, tree
// decomposition, rebind, evaluate — whichever the method uses) polls
// cancellation at bounded intervals and records its wall time, output size,
// and scratch allocations into the returned BuildMetrics. A cancelled build
// returns an error wrapping both ErrBuildCancelled and the context's error.
func DecomposeCtx(ctx context.Context, g *Graph, opt DecomposeOptions) (*DecomposeResult, error) {
	if obs.TracerFrom(ctx) != nil {
		var sp *obs.Span
		ctx, sp = obs.StartSpan(ctx, "decompose/"+opt.Method.String())
		defer sp.End()
	}
	p := decomp.NewPipeline(ctx)
	res := &DecomposeResult{}
	var err error
	switch opt.Method {
	case MethodTree:
		err = buildTreeMethod(p, g, opt, res)
	case MethodPlanar, MethodMinorFree:
		err = buildSparseMethod(p, g, opt, res)
	case MethodFixedDegree:
		err = buildFixedDegreeMethod(p, g, opt, res)
	case MethodSpectral:
		err = buildSpectralMethod(p, g, opt, res)
	default:
		return nil, fmt.Errorf("hcd: unknown decomposition method %d", int(opt.Method))
	}
	if err == nil && !opt.SkipReport {
		err = p.Run(decomp.StageEvaluate, func(ctx context.Context) (decomp.StageInfo, error) {
			rep, rerr := decomp.EvaluateCtx(ctx, res.D, graph.MaxExactConductance)
			if rerr != nil {
				return decomp.StageInfo{Vertices: g.N(), Edges: g.M()}, rerr
			}
			res.Report = rep
			p.Metrics.Cert = rep.Cert
			return decomp.StageInfo{Vertices: g.N(), Edges: g.M()}, nil
		})
	}
	res.Metrics = p.Metrics
	res.Metrics.Publish(obs.RegistryFrom(ctx))
	if err != nil {
		return nil, err
	}
	return res, nil
}

func buildTreeMethod(p *decomp.Pipeline, g *Graph, opt DecomposeOptions, res *DecomposeResult) error {
	return p.Run(decomp.StageTree, func(ctx context.Context) (decomp.StageInfo, error) {
		var err error
		if opt.Parallel {
			res.D, err = decomp.TreeParallelCtx(ctx, g)
		} else {
			res.D, err = decomp.TreeCtx(ctx, g)
		}
		return stageInfoOf(res.D), err
	})
}

func buildFixedDegreeMethod(p *decomp.Pipeline, g *Graph, opt DecomposeOptions, res *DecomposeResult) error {
	if opt.Shards <= 1 || g.N() < 2*opt.Shards {
		// Single-pass build: bit-identical to the pre-shard pipeline.
		res.ShardStats = decomp.ShardStats{Shards: 1}
		return p.Run(decomp.StageCluster, func(ctx context.Context) (decomp.StageInfo, error) {
			var err error
			res.D, err = decomp.FixedDegreeCtx(ctx, g, opt.SizeCap, opt.Seed)
			return stageInfoOf(res.D), err
		})
	}
	var shards []graph.Shard
	if err := p.Run(decomp.StagePartition, func(ctx context.Context) (decomp.StageInfo, error) {
		shards = graph.PartitionShards(g, opt.Shards)
		return decomp.StageInfo{Vertices: g.N(), Edges: len(shards)}, nil
	}); err != nil {
		return err
	}
	if err := p.Run(decomp.StageCluster, func(ctx context.Context) (decomp.StageInfo, error) {
		var err error
		res.D, res.ShardStats, err = decomp.ClusterShards(ctx, g, shards, opt.SizeCap, opt.Seed)
		return stageInfoOf(res.D), err
	}); err != nil {
		return err
	}
	return p.Run(decomp.StageStitch, func(ctx context.Context) (decomp.StageInfo, error) {
		err := decomp.StitchShards(ctx, res.D, shards, opt.SizeCap, opt.Seed, &res.ShardStats)
		return stageInfoOf(res.D), err
	})
}

func buildSpectralMethod(p *decomp.Pipeline, g *Graph, opt DecomposeOptions, res *DecomposeResult) error {
	return p.Run(decomp.StageSpectral, func(ctx context.Context) (decomp.StageInfo, error) {
		var err error
		res.D, res.SpectralStats, err = spectralcut.DecomposeCtx(ctx, g, opt.Spectral)
		return stageInfoOf(res.D), err
	})
}

// buildSparseMethod runs the Theorem 2.2/2.3 pipeline stage by stage:
// base-tree → sparsify → strip-cut-core → tree-decompose → rebind.
func buildSparseMethod(p *decomp.Pipeline, g *Graph, opt DecomposeOptions, res *DecomposeResult) error {
	sopt := sparsify.Options{Base: opt.Base, ExtraFraction: opt.ExtraFraction, Seed: opt.Seed}
	if opt.Method == MethodMinorFree {
		sopt.Base = sparsify.LowStretchTree
	}
	var tree []Edge
	if err := p.Run(decomp.StageBaseTree, func(ctx context.Context) (decomp.StageInfo, error) {
		var err error
		tree, err = sparsify.BaseTreeCtx(ctx, g, sopt)
		return decomp.StageInfo{Vertices: g.N(), Edges: len(tree)}, err
	}); err != nil {
		return err
	}
	var sres *sparsify.Result
	if err := p.Run(decomp.StageSparsify, func(ctx context.Context) (decomp.StageInfo, error) {
		var err error
		sres, err = sparsify.FromTreeCtx(ctx, g, tree, sopt)
		if err != nil {
			return decomp.StageInfo{}, err
		}
		return decomp.StageInfo{Vertices: sres.B.N(), Edges: sres.B.M()}, nil
	}); err != nil {
		return err
	}
	res.B = sres.B
	res.AvgStretch = sres.AvgStretch
	var forest *Graph
	if err := p.Run(decomp.StageCoreCut, func(ctx context.Context) (decomp.StageInfo, error) {
		var stats decomp.SparseStats
		var err error
		forest, stats, err = decomp.CoreCutCtx(ctx, sres.B)
		if err != nil {
			return decomp.StageInfo{}, err
		}
		res.CoreSize, res.CutEdges = stats.CoreSize, stats.CutEdges
		return decomp.StageInfo{Vertices: forest.N(), Edges: forest.M()}, nil
	}); err != nil {
		return err
	}
	var td *Decomposition
	if err := p.Run(decomp.StageTree, func(ctx context.Context) (decomp.StageInfo, error) {
		var err error
		td, err = decomp.TreeCtx(ctx, forest)
		return stageInfoOf(td), err
	}); err != nil {
		return err
	}
	return p.Run(decomp.StageRebind, func(context.Context) (decomp.StageInfo, error) {
		db := &decomp.Decomposition{G: sres.B, Assign: td.Assign, Count: td.Count}
		var err error
		res.D, err = decomp.Rebind(db, g)
		return stageInfoOf(res.D), err
	})
}

// stageInfoOf sizes a stage by its decomposition output (nil-safe for failed
// stages).
func stageInfoOf(d *Decomposition) decomp.StageInfo {
	if d == nil {
		return decomp.StageInfo{}
	}
	return decomp.StageInfo{Vertices: d.G.N(), Edges: d.G.M()}
}
