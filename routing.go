package hcd

import (
	"hcd/internal/route"
)

// Router routes demands obliviously through a laminar decomposition: every
// (s, t) pair follows a canonical path up through cluster representatives
// to the first common cluster and back down — the application of
// high-conductance hierarchies in the oblivious-routing literature the
// paper builds on.
type Router = route.Router

// NewRouter builds an oblivious router over the hierarchy lam of g.
func NewRouter(g *Graph, lam *LaminarTree) (*Router, error) {
	return route.New(g, lam)
}

// RouteCongestion accumulates per-edge load (1/weight per traversal) over a
// set of vertex paths, returning the maximum and mean over used edges.
func RouteCongestion(g *Graph, paths [][]int) (maxLoad, meanLoad float64, err error) {
	return route.Congestion(g, paths)
}

// ShortestPath returns a min-hop path between s and t — the non-oblivious
// baseline.
func ShortestPath(g *Graph, s, t int) ([]int, error) {
	return route.ShortestPath(g, s, t)
}

// ValidatePath checks that a vertex path connects s to t through edges of g.
func ValidatePath(g *Graph, path []int, s, t int) error {
	return route.Validate(g, path, s, t)
}
