// Command hcd-replay is the scenario replay harness: it materializes a
// seedable workload scenario into a deterministic request trace, replays the
// trace against the serve stack (in-process by default, or a live server
// with -target), and scores the run against the scenario's SLOs with the
// weighted fitness function.
//
// The committed artifact is BENCH_replay.json (`make bench-replay`): a
// benchfmt record stamped with the git commit, whose embedded report carries
// a Deterministic section and fitness score that are bit-identical across
// runs and GOMAXPROCS settings — hcd-benchdiff gates on the score with no
// noise margin. Wall-clock latencies and throughput live in the report's
// Measured section and are informational only.
//
// Usage:
//
//	hcd-replay -scenario smoke                      # seconds-scale smoke
//	hcd-replay -scenario steady -out BENCH_replay.json
//	hcd-replay -scenario burst -target http://localhost:8080
//	hcd-replay -scenario steady -emit-trace trace.json
//	hcd-replay -in trace.json -gate                 # replay a saved trace
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hcd/internal/benchfmt"
	"hcd/internal/cli"
	"hcd/internal/replay"
)

func main() { cli.Main(run) }

func run() error {
	scenario := flag.String("scenario", "smoke", "built-in scenario: "+strings.Join(replay.BuiltinNames(), " | "))
	in := flag.String("in", "", "replay this trace file instead of a built-in scenario")
	seed := flag.Int64("seed", 0, "override the scenario seed (0 = keep)")
	requests := flag.Int("requests", 0, "override the scenario request count (0 = keep)")
	target := flag.String("target", "", "replay against a live server base URL instead of in-process")
	out := flag.String("out", "", "write the benchfmt record (e.g. BENCH_replay.json)")
	emitTrace := flag.String("emit-trace", "", "also write the materialized trace JSON to this file")
	gate := flag.Bool("gate", false, "exit non-zero when a deterministic SLO fails")
	jsonOut := flag.Bool("json", false, "print the full report JSON to stdout instead of the summary")
	flag.Parse()

	var tr *replay.Trace
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		tr, err = replay.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		if *seed != 0 || *requests != 0 {
			// Overrides change the scenario, so the saved request list no
			// longer matches: regenerate from the amended header.
			sc := tr.Scenario
			applyOverrides(&sc, *seed, *requests)
			if tr, err = replay.Generate(sc); err != nil {
				return err
			}
		}
	} else {
		sc, err := replay.Builtin(*scenario)
		if err != nil {
			return err
		}
		applyOverrides(&sc, *seed, *requests)
		if tr, err = replay.Generate(sc); err != nil {
			return err
		}
	}

	if *emitTrace != "" {
		f, err := os.Create(*emitTrace)
		if err != nil {
			return err
		}
		werr := tr.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("hcd-replay: -emit-trace: %w", werr)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	rep, err := replay.Run(ctx, tr, replay.Options{BaseURL: *target})
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Print(rep.Summary())
	}

	if *out != "" {
		rec := benchfmt.NewRecord("replay", rep.Scenario)
		raw, merr := json.Marshal(rep)
		if merr != nil {
			return merr
		}
		rec.Replay = raw
		buf, merr := rec.Marshal()
		if merr != nil {
			return merr
		}
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (score %.4f)\n", *out, rep.Score)
	}

	if *gate && !rep.SLOPass() {
		return fmt.Errorf("hcd-replay: deterministic SLO failed (score %.4f)", rep.Score)
	}
	return nil
}

// applyOverrides amends the scenario header with the -seed / -requests
// flags; the trace is regenerated from the result.
func applyOverrides(sc *replay.Scenario, seed int64, requests int) {
	if seed != 0 {
		sc.Seed = seed
	}
	if requests != 0 {
		sc.Requests = requests
	}
}
