package main

// The -chaos mode: a deterministic fault-recovery battery. Each check
// activates a seeded fault-injection plan, exercises one recovery path end
// to end, and asserts the documented containment behavior — the solve
// recovers, the error carries the right sentinel, the process stays alive.
// No randomness is involved, so a chaos failure reproduces immediately.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"

	"hcd"
	"hcd/internal/cli"
	"hcd/internal/faultinject"
	"hcd/internal/gio"
	"hcd/internal/graph"
	"hcd/internal/par"
)

// chaosCtx is the root context of every chaos check; main swaps in the
// instrumented context when -trace/-listen are set, so the fault-recovery
// battery records its span trees and fault-fire instants.
var chaosCtx = context.Background()

// chaosChecks runs the battery and returns the failure count.
func chaosChecks() int {
	checks := []struct {
		name string
		run  func() error
	}{
		{"matvec NaN mid-solve: resilient ladder recovers", chaosMatvecNaN},
		{"worker panic: error with stack, process alive", chaosWorkerPanic},
		{"stage fault: decompose build fails with error, not panic", chaosStageFail},
		{"corrupted clustering: reseeded hierarchy rung recovers", chaosCorruptBuild},
		{"PCG breakdown: in-solve restart converges", chaosBreakdownRestart},
		{"overlapping engine solves: ErrEngineBusy, no corruption", chaosEngineBusy},
		{"malformed input: line-numbered ErrInvalidInput", chaosMalformedInput},
	}
	bad := 0
	for _, c := range checks {
		status := "ok"
		if err := c.run(); err != nil {
			status = fmt.Sprintf("FAIL: %v", err)
			bad++
		}
		fmt.Printf("chaos: %-55s %s\n", c.name, status)
	}
	return bad
}

func chaosMatvecNaN() error {
	g := hcd.Grid2D(12, 12, nil, 1)
	b := cli.MeanFreeRHS(g.N(), 7)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.MatvecNaN: {OnHit: 1, Count: 2},
	})
	defer restore()
	res, rep, err := hcd.SolveResilient(chaosCtx, g, b, hcd.DefaultResilienceOptions())
	if err != nil {
		return fmt.Errorf("ladder failed: %w (report: %s)", err, rep)
	}
	if !res.Converged || !rep.Recovered {
		return fmt.Errorf("converged=%v recovered=%v (report: %s)", res.Converged, rep.Recovered, rep)
	}
	if len(rep.Attempts) < 2 {
		return fmt.Errorf("recovery needs an attempt trail, got %d attempts", len(rep.Attempts))
	}
	return nil
}

func chaosWorkerPanic() error {
	// Exercise the multi-worker path even on single-core hosts, where
	// par.For would otherwise short-circuit to a plain sequential call.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.WorkerPanic: {OnHit: 2, Count: 1},
	})
	defer restore()
	err := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = par.AsError(v)
			}
		}()
		par.For(1<<16, 1024, func(lo, hi int) {})
		return nil
	}()
	if err == nil {
		return fmt.Errorf("injected worker panic was swallowed")
	}
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		return fmt.Errorf("error %T does not carry the worker panic", err)
	}
	if len(pe.Stack) == 0 {
		return fmt.Errorf("worker panic lost its stack")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		return fmt.Errorf("panic value lost the injected sentinel: %v", err)
	}
	return nil
}

func chaosStageFail() error {
	g := hcd.Grid2D(10, 10, nil, 1)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.StageFail: {OnHit: 1, Count: 1},
	})
	defer restore()
	_, err := hcd.DecomposeCtx(chaosCtx, g, hcd.DefaultDecomposeOptions(hcd.MethodFixedDegree))
	if !errors.Is(err, faultinject.ErrInjected) {
		return fmt.Errorf("err = %v, want the injected stage fault", err)
	}
	// Past the fault window the same build must succeed.
	if _, err := hcd.DecomposeCtx(chaosCtx, g, hcd.DefaultDecomposeOptions(hcd.MethodFixedDegree)); err != nil {
		return fmt.Errorf("clean rebuild after fault window: %w", err)
	}
	return nil
}

func chaosCorruptBuild() error {
	g := hcd.Grid2D(40, 40, nil, 1)
	b := cli.MeanFreeRHS(g.N(), 8)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.PerturbCorrupt: {OnHit: 1, Count: 1},
	})
	defer restore()
	opt := hcd.DefaultResilienceOptions()
	opt.Hierarchy.DirectLimit = 50
	res, rep, err := hcd.SolveResilient(chaosCtx, g, b, opt)
	if err != nil {
		return fmt.Errorf("ladder failed: %w (report: %s)", err, rep)
	}
	if !rep.Recovered || rep.Rung != hcd.RungReseededPCG {
		return fmt.Errorf("recovered=%v rung=%q, want reseeded recovery (report: %s)", rep.Recovered, rep.Rung, rep)
	}
	if !res.Converged {
		return fmt.Errorf("outcome %v", res.Outcome)
	}
	return nil
}

func chaosBreakdownRestart() error {
	g := hcd.Grid2D(12, 12, nil, 1)
	b := cli.MeanFreeRHS(g.N(), 9)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.ForceBreakdown: {OnHit: 5, Count: 1},
	})
	defer restore()
	opt := hcd.DefaultSolveOptions()
	opt.Recovery = hcd.RecoveryPolicy{MaxRestarts: 1}
	res, err := hcd.SolvePCGCtx(chaosCtx, g, b, nil, opt)
	if err != nil {
		return err
	}
	if !res.Converged {
		return fmt.Errorf("outcome %v reason %q", res.Outcome, res.Reason)
	}
	if res.Metrics.Restarts < 1 {
		return fmt.Errorf("restarts = %d, want >= 1", res.Metrics.Restarts)
	}
	return nil
}

func chaosEngineBusy() error {
	g := hcd.Grid2D(10, 10, nil, 1)
	b := cli.MeanFreeRHS(g.N(), 10)
	entered := make(chan struct{})
	release := make(chan struct{})
	blocking := &blockingPrecond{n: g.N(), entered: entered, release: release}
	eng, err := hcd.NewEngine(g, blocking, hcd.DefaultSolveOptions())
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() {
		_, err := eng.Solve(context.Background(), b)
		done <- err
	}()
	<-entered
	if _, err := eng.Solve(context.Background(), b); !errors.Is(err, hcd.ErrEngineBusy) {
		close(release)
		return fmt.Errorf("overlapping solve: err = %v, want ErrEngineBusy", err)
	}
	close(release)
	if err := <-done; err != nil {
		return fmt.Errorf("first solve: %w", err)
	}
	return nil
}

func chaosMalformedInput() error {
	_, err := gio.ReadEdgeList(strings.NewReader("0 1 1.0\n0 2 NaN\n"))
	if !errors.Is(err, graph.ErrInvalidInput) {
		return fmt.Errorf("err = %v, want ErrInvalidInput", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		return fmt.Errorf("err %q does not carry the line number", err)
	}
	if _, err := gio.ReadMatrixMarket(strings.NewReader("%%MatrixMarket matrix coordinate real symmetric\n2 2 99999999999\n")); !errors.Is(err, graph.ErrInvalidInput) {
		return fmt.Errorf("oversized nnz: err = %v, want ErrInvalidInput", err)
	}
	return nil
}

// blockingPrecond is an identity preconditioner that parks its first apply
// on a channel, holding the engine mid-solve so an overlapping call is
// provoked deterministically.
type blockingPrecond struct {
	n                int
	first            bool
	entered, release chan struct{}
}

func (p *blockingPrecond) Dim() int { return p.n }

func (p *blockingPrecond) Apply(dst, r []float64) {
	if !p.first {
		p.first = true
		close(p.entered)
		<-p.release
	}
	copy(dst, r)
}
