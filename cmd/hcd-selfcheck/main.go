// Command hcd-selfcheck soaks the library's theorem-level guarantees on
// randomized instances with exact certificates: run it after any change to
// the core algorithms. Each check mirrors one of the paper's claims; a
// failure prints the offending seed for reproduction.
//
// Usage:
//
//	hcd-selfcheck -rounds 50 -seed 1
//	hcd-selfcheck -chaos
//	hcd-selfcheck -server-chaos
//
// The -chaos flag runs the deterministic fault-recovery battery instead of
// the theorem checks: each chaos check injects a fault (NaN matvec, worker
// panic, corrupted clustering, forced breakdown, malformed input) and
// asserts the library recovers or fails cleanly as documented.
//
// The -server-chaos flag runs the serving-layer durability battery: servers
// are crashed (in-process and via real SIGKILL) and restarted on the same
// -state-dir, snapshots are corrupted, and the PR-8 fault points
// (snapshot-write, snapshot-read, build-fail, solve-delay) are injected,
// asserting restore-without-rebuild, quarantine, breaker degradation to CG,
// and deadline status mapping.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"hcd"
	"hcd/internal/cli"
)

var failures int

func main() {
	rounds := flag.Int("rounds", 25, "random instances per check")
	seed := flag.Int64("seed", 1, "base seed")
	chaos := flag.Bool("chaos", false, "run the deterministic fault-recovery battery instead of the theorem checks")
	serverChaos := flag.Bool("server-chaos", false, "run the serving-layer crash/recovery battery instead of the theorem checks")
	o := cli.ObsFlags()
	flag.Parse()

	var err error
	chaosCtx, err = o.Start(chaosCtx)
	if err != nil {
		log.Fatal(err)
	}

	if *chaos || *serverChaos {
		bad := 0
		if *chaos {
			bad += chaosChecks()
		}
		if *serverChaos {
			bad += serverChaosChecks()
		}
		if cerr := o.Close(); cerr != nil {
			log.Fatal(cerr)
		}
		if bad > 0 {
			os.Exit(1)
		}
		return
	}
	defer func() {
		if cerr := o.Close(); cerr != nil {
			log.Fatal(cerr)
		}
	}()

	checks := []struct {
		name string
		run  func(rng *rand.Rand) error
	}{
		{"theorem 2.1: tree decomposition [φ≥1/3, ρ≥6/5]", checkTree},
		{"section 2: ≤1 γ-violation per cluster", checkGammaLemma},
		{"section 3.1: fixed-degree clustering [φ≥1/(2d²k), ρ≥2]", checkFixedDegree},
		{"theorem 2.2: planar pipeline validity", checkPlanar},
		{"theorem 3.5: σ(S_P, A) ≤ 3(1+2/φ³)", checkTheorem35},
		{"theorem 4.1: eigenvector alignment bound", checkTheorem41},
		{"two-level identity: PCG solves verified", checkSolve},
	}
	for _, c := range checks {
		rng := rand.New(rand.NewSource(*seed))
		bad := 0
		for r := 0; r < *rounds; r++ {
			if err := c.run(rng); err != nil {
				bad++
				fmt.Printf("FAIL %-52s round %d: %v\n", c.name, r, err)
			}
		}
		status := "ok"
		if bad > 0 {
			status = fmt.Sprintf("%d FAILURES", bad)
			failures += bad
		}
		fmt.Printf("%-58s %s (%d rounds)\n", c.name, status, *rounds)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func randomTree(rng *rand.Rand, lo, hi int) *hcd.Graph {
	n := lo + rng.Intn(hi-lo)
	return hcd.RandomTree(n, hcd.LognormalWeights(1.5), rng.Int63())
}

func checkTree(rng *rand.Rand) error {
	g := randomTree(rng, 4, 200)
	d, err := decomposeTree(g)
	if err != nil {
		return err
	}
	if err := hcd.Validate(d); err != nil {
		return err
	}
	rep := hcd.Evaluate(d)
	if !rep.PhiExact {
		return fmt.Errorf("conductance not exact")
	}
	if rep.Phi < 1.0/3-1e-9 {
		return fmt.Errorf("φ = %v < 1/3", rep.Phi)
	}
	if rep.Rho < 6.0/5 {
		return fmt.Errorf("ρ = %v < 6/5", rep.Rho)
	}
	return nil
}

func checkGammaLemma(rng *rand.Rand) error {
	g := randomTree(rng, 5, 150)
	d, err := decomposeTree(g)
	if err != nil {
		return err
	}
	rep := hcd.Evaluate(d)
	if mv := hcd.MaxGammaViolations(d, rep.Phi*(1-1e-9)); mv > 1 {
		return fmt.Errorf("%d γ-violations in a cluster", mv)
	}
	return nil
}

func checkFixedDegree(rng *rand.Rand) error {
	side := 4 + rng.Intn(5)
	g := hcd.Grid3D(side, side, side, hcd.LognormalWeights(1), rng.Int63())
	d, err := decomposeFixedDegree(g, 4, rng.Int63())
	if err != nil {
		return err
	}
	if err := hcd.Validate(d); err != nil {
		return err
	}
	rep := hcd.Evaluate(d)
	if rep.Rho < 2 {
		return fmt.Errorf("ρ = %v < 2", rep.Rho)
	}
	dmax := g.MaxDegree()
	floor := 1.0 / (2 * float64(dmax*dmax) * float64(rep.MaxClusterSize))
	if rep.Phi < floor {
		return fmt.Errorf("φ = %v below certified floor %v", rep.Phi, floor)
	}
	return nil
}

func checkPlanar(rng *rand.Rand) error {
	side := 6 + rng.Intn(10)
	g := hcd.PlanarMesh(side, side, hcd.LognormalWeights(1), rng.Int63())
	res, err := hcd.DecomposeCtx(context.Background(), g,
		hcd.DefaultDecomposeOptions(hcd.MethodPlanar))
	if err != nil {
		return err
	}
	if err := hcd.Validate(res.D); err != nil {
		return err
	}
	if rep := hcd.Evaluate(res.D); rep.Phi <= 0 || rep.Rho <= 1 {
		return fmt.Errorf("degenerate report %+v", rep)
	}
	return nil
}

func checkTheorem35(rng *rand.Rand) error {
	g := randomTree(rng, 20, 400)
	d, err := decomposeTree(g)
	if err != nil {
		return err
	}
	rep := hcd.Evaluate(d)
	p, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		return err
	}
	nums, err := hcd.MeasureSupport(g, p, cli.MeanFreeRHS(g.N(), rng.Int63()), 60)
	if err != nil {
		return err
	}
	bound := 3 * (1 + 2/math.Pow(rep.Phi, 3))
	if nums.SigmaBA > bound*1.01 {
		return fmt.Errorf("σ(B,A) = %v > bound %v (φ=%v)", nums.SigmaBA, bound, rep.Phi)
	}
	return nil
}

func checkTheorem41(rng *rand.Rand) error {
	side := 5 + rng.Intn(6)
	g := hcd.Grid2D(side, side, hcd.LognormalWeights(1), rng.Int63())
	d, err := decomposeFixedDegree(g, 4, rng.Int63())
	if err != nil {
		return err
	}
	rep := hcd.Evaluate(d)
	k := 3
	if k >= g.N()-1 {
		k = g.N() - 2
	}
	vals, vecs, err := hcd.SmallestEigenpairs(g, k, 0, rng.Int63())
	if err != nil {
		return err
	}
	for i := range vals {
		mis := 1 - hcd.Alignment(d, vecs[i])
		bound := 3 * vals[i] * (1 + 2/math.Pow(rep.Phi, 3))
		if mis > bound+1e-7 {
			return fmt.Errorf("eig %d: misalignment %v > bound %v", i, mis, bound)
		}
	}
	return nil
}

func checkSolve(rng *rand.Rand) error {
	side := 5 + rng.Intn(5)
	g := hcd.OCT3D(side, side, side, hcd.OCTOptions{
		Layers: 3, Contrast: 50, NoiseSigma: 1, Seed: rng.Int63(),
	})
	b := cli.MeanFreeRHS(g.N(), rng.Int63())
	res, err := hcd.SolveCtx(context.Background(), g, b)
	if err != nil {
		return err
	}
	if !res.Converged {
		return fmt.Errorf("not converged in %d iterations", res.Iterations)
	}
	ax := make([]float64, g.N())
	g.LapMul(ax, res.X)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-5 {
			return fmt.Errorf("residual %v at %d", ax[i]-b[i], i)
		}
	}
	return nil
}

func init() {
	log.SetFlags(0)
}

// The context-ful decomposition entry points, shared by the checks (the
// one-shot hcd.DecomposeTree / hcd.DecomposeFixedDegree wrappers are
// deprecated).
func decomposeTree(g *hcd.Graph) (*hcd.Decomposition, error) {
	res, err := hcd.DecomposeCtx(context.Background(), g,
		hcd.DecomposeOptions{Method: hcd.MethodTree, SkipReport: true})
	if err != nil {
		return nil, err
	}
	return res.D, nil
}

func decomposeFixedDegree(g *hcd.Graph, sizeCap int, seed int64) (*hcd.Decomposition, error) {
	res, err := hcd.DecomposeCtx(context.Background(), g, hcd.DecomposeOptions{
		Method: hcd.MethodFixedDegree, SizeCap: sizeCap, Seed: seed, SkipReport: true,
	})
	if err != nil {
		return nil, err
	}
	return res.D, nil
}
