package main

// The -server-chaos mode: a crash/recovery battery for the serving layer's
// durability and degradation machinery (PR 8). Each check wires a server —
// usually in-process over httptest, once as a real child process killed with
// SIGKILL — through one failure mode and asserts the documented recovery:
// restarts restore handles without rebuilding, corrupt snapshots quarantine
// instead of crashing, the build circuit breaker degrades solves to CG, and
// deadline budgets map to the right status codes. All four PR-8 fault points
// (gio/snapshot-write, gio/snapshot-read, serve/build-fail,
// serve/solve-delay) fire somewhere in the battery.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/obs"
	"hcd/internal/serve"
)

// serverChaosChecks runs the battery and returns the failure count.
func serverChaosChecks() int {
	checks := []struct {
		name string
		run  func() error
	}{
		{"state-dir restart: handle restores ready, zero rebuild", scRestartRestores},
		{"corrupt snapshot: quarantined and rebuilt, not fatal", scCorruptSnapshot},
		{"snapshot-read fault: unrecoverable handle fails cleanly", scSnapshotReadFault},
		{"build-fail breaker: solves degrade to the CG rung", scBreakerDegrades},
		{"solve-delay + budget: deadline expiry maps to 504", scDeadline504},
		{"snapshot-write fault: handle serves memory-only", scSnapshotWriteFault},
		{"kill -9 mid-build: restart restores built handles", scKillDashNine},
	}
	bad := 0
	for _, c := range checks {
		status := "ok"
		if err := c.run(); err != nil {
			status = fmt.Sprintf("FAIL: %v", err)
			bad++
		}
		fmt.Printf("server-chaos: %-52s %s\n", c.name, status)
	}
	return bad
}

// scClient is a minimal JSON client for the in-process checks.
type scClient struct{ base string }

func (c scClient) do(method, path string, body any) (int, map[string]any, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out := map[string]any{}
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		_ = json.Unmarshal(raw, &out)
	}
	return resp.StatusCode, out, nil
}

// scServer spins up an in-process server over httptest.
func scServer(cfg serve.Config) (*serve.Server, scClient, func()) {
	srv := serve.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	return srv, scClient{base: ts.URL}, ts.Close
}

func scSubmitReady(c scClient, spec string) (string, error) {
	code, body, err := c.do("POST", "/v1/graphs?spec="+spec+"&wait=true", nil)
	if err != nil {
		return "", err
	}
	if code != http.StatusCreated {
		return "", fmt.Errorf("submit %s: code %d body %v", spec, code, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		return "", fmt.Errorf("submit %s: no id in %v", spec, body)
	}
	return id, nil
}

func scRestartRestores() error {
	dir, err := os.MkdirTemp("", "hcd-server-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srvA, cA, closeA := scServer(serve.Config{StateDir: dir})
	id, err := scSubmitReady(cA, "grid3d:8")
	if err != nil {
		return err
	}
	srvA.Close() // crash, no drain
	closeA()

	tr := obs.NewTracer()
	_, cB, closeB := scServer(serve.Config{StateDir: dir, Tracer: tr})
	defer closeB()
	code, body, err := cB.do("GET", "/v1/graphs/"+id, nil)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("restored handle poll: code %d err %v", code, err)
	}
	if body["status"] != "ready" || body["restored"] != true {
		return fmt.Errorf("restored handle state %v, want ready+restored", body)
	}
	code, body, err = cB.do("POST", "/v1/graphs/"+id+"/solve", map[string]any{"rhs": 1})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("restored solve: code %d body %v err %v", code, body, err)
	}
	for _, sp := range tr.Spans() {
		if strings.Contains(sp.Name, "build") {
			return fmt.Errorf("restored server recorded build span %q — restore must not rebuild", sp.Name)
		}
	}
	return nil
}

func scCorruptSnapshot() error {
	dir, err := os.MkdirTemp("", "hcd-server-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srvA, cA, closeA := scServer(serve.Config{StateDir: dir})
	id, err := scSubmitReady(cA, "grid3d:8")
	if err != nil {
		return err
	}
	srvA.Close()
	closeA()

	snap := filepath.Join(dir, id+".snap")
	raw, err := os.ReadFile(snap)
	if err != nil {
		return err
	}
	raw[len(raw)-1] ^= 0xff // hierarchy data damaged, graph section intact
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		return err
	}

	_, cB, closeB := scServer(serve.Config{StateDir: dir})
	defer closeB()
	code, body, err := cB.do("POST", "/v1/graphs/"+id+"/solve", map[string]any{"rhs": 1, "wait": true})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("solve after quarantine+rebuild: code %d body %v err %v", code, body, err)
	}
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		return fmt.Errorf("damaged snapshot not quarantined: %v", err)
	}
	return nil
}

func scSnapshotReadFault() error {
	dir, err := os.MkdirTemp("", "hcd-server-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srvA, cA, closeA := scServer(serve.Config{StateDir: dir})
	id, err := scSubmitReady(cA, "grid3d:6")
	if err != nil {
		return err
	}
	srvA.Close()
	closeA()

	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.SnapshotRead: {}, // every hydration read fails
	})
	defer restore()

	_, cB, closeB := scServer(serve.Config{StateDir: dir})
	defer closeB()
	code, body, err := cB.do("POST", "/v1/graphs/"+id+"/solve", map[string]any{"rhs": 1})
	if err != nil {
		return err
	}
	if code != http.StatusUnprocessableEntity {
		return fmt.Errorf("solve on unreadable snapshot: code %d body %v, want 422", code, body)
	}
	if faultinject.Hits(faultinject.SnapshotRead) == 0 {
		return fmt.Errorf("snapshot-read fault point never hit")
	}
	// The server survives and serves fresh work.
	if _, err := scSubmitReady(cB, "grid3d:5"); err != nil {
		return fmt.Errorf("server unusable after read fault: %w", err)
	}
	return nil
}

func scBreakerDegrades() error {
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.BuildFail: {}, // every build attempt fails
	})
	defer restore()

	_, c, closeS := scServer(serve.Config{BreakerThreshold: 2})
	defer closeS()
	code, body, err := c.do("POST", "/v1/graphs?spec=grid3d:6&wait=true", nil)
	if err != nil {
		return err
	}
	if code != http.StatusCreated || body["status"] != "failed" {
		return fmt.Errorf("submit under build-fail: code %d body %v", code, body)
	}
	id := body["id"].(string)

	// First solve 422s and schedules the retry that trips the breaker.
	if code, _, err = c.do("POST", "/v1/graphs/"+id+"/solve", map[string]any{"rhs": 1}); err != nil {
		return err
	} else if code != http.StatusUnprocessableEntity {
		return fmt.Errorf("solve on failed handle: code %d, want 422", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body, err = c.do("GET", "/v1/graphs/"+id, nil)
		if err != nil {
			return err
		}
		if body["status"] == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("breaker never opened; handle stuck at %v", body["status"])
		}
		time.Sleep(10 * time.Millisecond)
	}

	code, body, err = c.do("POST", "/v1/graphs/"+id+"/solve", map[string]any{"rhs": 1})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("degraded solve: code %d body %v err %v", code, body, err)
	}
	res := body["results"].([]any)[0].(map[string]any)
	if body["degraded"] != true || res["rung"] != "cg" || res["converged"] != true {
		return fmt.Errorf("degraded solve result %v, want converged on rung cg", body)
	}
	return nil
}

func scDeadline504() error {
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.SolveDelay: {Delay: 300 * time.Millisecond, DelayOnly: true},
	})
	defer restore()

	_, c, closeS := scServer(serve.Config{})
	defer closeS()
	id, err := scSubmitReady(c, "grid3d:6")
	if err != nil {
		return err
	}
	code, body, err := c.do("POST", "/v1/graphs/"+id+"/solve?timeout_ms=50", map[string]any{"rhs": 1})
	if err != nil {
		return err
	}
	if code != http.StatusGatewayTimeout {
		return fmt.Errorf("expired budget: code %d body %v, want 504", code, body)
	}
	if faultinject.Hits(faultinject.SolveDelay) == 0 {
		return fmt.Errorf("solve-delay fault point never hit")
	}
	return nil
}

func scSnapshotWriteFault() error {
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.SnapshotWrite: {},
	})
	defer restore()

	dir, err := os.MkdirTemp("", "hcd-server-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	_, c, closeS := scServer(serve.Config{StateDir: dir})
	defer closeS()
	id, err := scSubmitReady(c, "grid3d:6")
	if err != nil {
		return fmt.Errorf("write fault must not poison the build: %w", err)
	}
	if code, body, err := c.do("POST", "/v1/graphs/"+id+"/solve", map[string]any{"rhs": 1}); err != nil || code != http.StatusOK {
		return fmt.Errorf("memory-only solve: code %d body %v err %v", code, body, err)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".snap")); !os.IsNotExist(err) {
		return fmt.Errorf("failed snapshot write left a file")
	}
	if faultinject.Hits(faultinject.SnapshotWrite) == 0 {
		return fmt.Errorf("snapshot-write fault point never hit")
	}
	return nil
}

// scKillDashNine is the end-to-end crash test: a real hcd-server child
// process is SIGKILLed while a second build is in flight, then restarted on
// the same state dir. The handle whose ?wait=true submit returned before the
// kill must restore ready and solve without a rebuild. Skipped (ok) when the
// go toolchain is unavailable to build the server binary.
func scKillDashNine() error {
	goBin, err := exec.LookPath("go")
	if err != nil {
		fmt.Println("server-chaos:   (kill -9 check skipped: go toolchain not in PATH)")
		return nil
	}
	work, err := os.MkdirTemp("", "hcd-server-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin := filepath.Join(work, "hcd-server")
	if out, err := exec.Command(goBin, "build", "-o", bin, "./cmd/hcd-server").CombinedOutput(); err != nil {
		return fmt.Errorf("building hcd-server: %v: %s", err, out)
	}
	stateDir := filepath.Join(work, "state")

	start := func() (*exec.Cmd, scClient, error) {
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-state-dir", stateDir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, scClient{}, err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, scClient{}, err
		}
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.TrimSpace(line[i+len("listening on "):])
				go io.Copy(io.Discard, stdout) // keep the pipe drained
				return cmd, scClient{base: "http://" + addr}, nil
			}
		}
		_ = cmd.Process.Kill()
		return nil, scClient{}, fmt.Errorf("server never printed its address")
	}

	cmd, c, err := start()
	if err != nil {
		return err
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}()

	id, err := scSubmitReady(c, "grid3d:8") // durable once wait returns
	if err != nil {
		return err
	}
	// Second build in flight at the moment of the kill.
	if code, body, err := c.do("POST", "/v1/graphs?spec=grid3d:20", nil); err != nil || code != http.StatusCreated {
		return fmt.Errorf("async submit: code %d body %v err %v", code, body, err)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL, no drain, no cleanup
		return err
	}
	_, _ = cmd.Process.Wait()

	cmd2, c2, err := start()
	if err != nil {
		return fmt.Errorf("restart after kill -9: %w", err)
	}
	defer func() {
		_ = cmd2.Process.Kill()
		_, _ = cmd2.Process.Wait()
	}()

	code, body, err := c2.do("GET", "/v1/graphs/"+id, nil)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("restored handle poll: code %d body %v err %v", code, body, err)
	}
	if body["status"] != "ready" || body["restored"] != true {
		return fmt.Errorf("handle after kill -9 restart: %v, want ready+restored", body)
	}
	code, body, err = c2.do("POST", "/v1/graphs/"+id+"/solve", map[string]any{"rhs": 1})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("solve after kill -9 restart: code %d body %v err %v", code, body, err)
	}
	res := body["results"].([]any)[0].(map[string]any)
	if res["converged"] != true {
		return fmt.Errorf("restored solve did not converge: %v", body)
	}
	return nil
}
