// Command hcd-scale benchmarks the shard-parallel build path at scale: it
// generates a weighted 3D grid, builds a multilevel hierarchy with a given
// shard count, solves one PCG system against it, and reports wall times plus
// peak RSS as JSON.
//
// Each shard configuration runs in its own child process (the command
// re-executes itself with -child) so the kernel's peak-RSS high-water mark
// (VmHWM) is attributable to that configuration alone rather than to
// whichever config ran first. The parent assembles the per-config records
// into one document suitable for committing as BENCH_scale.json.
//
// Usage:
//
//	hcd-scale -side 100 -shards 1,8 -out BENCH_scale.json
//	hcd-scale -side 59 -shards 4 -timeout 10m     # the CI scale-smoke config
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hcd"
	"hcd/internal/cli"
	"hcd/internal/obs"
)

// record is one shard configuration's measurements.
type record struct {
	Shards       int     `json:"shards"`
	BuildMS      float64 `json:"build_ms"`
	SolveMS      float64 `json:"solve_ms"`
	Iterations   int     `json:"iterations"`
	Converged    bool    `json:"converged"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
	Clusters     int     `json:"clusters"`
	Boundary     int     `json:"boundary_edges"`
	Merged       int     `json:"merged"`
}

// document is the whole benchmark output.
type document struct {
	Side     int      `json:"side"`
	Vertices int      `json:"vertices"`
	Edges    int      `json:"edges"`
	Procs    int      `json:"procs"` // GOMAXPROCS of the run — shard speedups need > 1
	Date     string   `json:"date"`
	Records  []record `json:"records"`
}

func main() {
	side := flag.Int("side", 100, "grid side length (side³ vertices)")
	shardList := flag.String("shards", "1,8", "comma-separated shard counts to benchmark")
	out := flag.String("out", "", "write the JSON document here (default stdout)")
	timeout := flag.Duration("timeout", 30*time.Minute, "wall-clock budget per configuration")
	child := flag.Int("child", -1, "internal: run one configuration with this shard count and print its record")
	flag.Parse()

	if *child >= 0 {
		if err := runChild(*side, *child); err != nil {
			log.Fatal(err)
		}
		return
	}

	doc := document{
		Side:  *side,
		Procs: runtime.GOMAXPROCS(0),
		Date:  time.Now().UTC().Format("2006-01-02"),
	}
	doc.Vertices = (*side) * (*side) * (*side)
	doc.Edges = 3 * (*side) * (*side) * ((*side) - 1)

	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range strings.Split(*shardList, ",") {
		shards, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || shards < 1 {
			log.Fatalf("bad shard count %q", f)
		}
		fmt.Fprintf(os.Stderr, "hcd-scale: side=%d shards=%d ...\n", *side, shards)
		start := time.Now()
		cmd := exec.Command(exe, "-side", strconv.Itoa(*side), "-child", strconv.Itoa(shards))
		cmd.Stderr = os.Stderr
		outBytes, err := runWithTimeout(cmd, *timeout)
		if err != nil {
			log.Fatalf("shards=%d: %v", shards, err)
		}
		var rec record
		if err := json.Unmarshal(outBytes, &rec); err != nil {
			log.Fatalf("shards=%d: bad child output: %v", shards, err)
		}
		fmt.Fprintf(os.Stderr, "hcd-scale: shards=%d build %.0fms solve %.0fms rss %dMB (total %v)\n",
			shards, rec.BuildMS, rec.SolveMS, rec.PeakRSSBytes>>20, time.Since(start).Round(time.Second))
		doc.Records = append(doc.Records, rec)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

// runWithTimeout runs cmd with a hard wall-clock budget, returning stdout.
func runWithTimeout(cmd *exec.Cmd, budget time.Duration) ([]byte, error) {
	var sb strings.Builder
	cmd.Stdout = &sb
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return []byte(sb.String()), err
	case <-time.After(budget):
		_ = cmd.Process.Kill()
		<-done
		return nil, fmt.Errorf("configuration exceeded the %v budget", budget)
	}
}

// runChild builds and solves one configuration in this process and prints
// its record as JSON on stdout. Peak RSS is read from VmHWM after the solve,
// so it covers generation + build + solve of exactly this configuration.
func runChild(side, shards int) error {
	g := hcd.Grid3D(side, side, side, hcd.LognormalWeights(1), 1)

	hopt := hcd.DefaultHierarchyOptions()
	hopt.Shards = shards
	buildStart := time.Now()
	h, err := hcd.NewHierarchy(g, hopt)
	if err != nil {
		return err
	}
	buildMS := float64(time.Since(buildStart).Microseconds()) / 1e3

	// One sharded decomposition on the side for the boundary statistics —
	// cheap next to the hierarchy build, and it reports what the stitch did.
	dres, err := hcd.DecomposeCtx(context.Background(), g, hcd.DecomposeOptions{
		Method: hcd.MethodFixedDegree, SizeCap: hopt.SizeCap, Seed: hopt.Seed,
		Shards: shards, SkipReport: true,
	})
	if err != nil {
		return err
	}

	b := cli.MeanFreeRHS(g.N(), 7)
	solveStart := time.Now()
	res, err := hcd.SolvePCGCtx(context.Background(), g, b, h, hcd.DefaultSolveOptions())
	if err != nil {
		return err
	}
	solveMS := float64(time.Since(solveStart).Microseconds()) / 1e3

	rec := record{
		Shards:       shards,
		BuildMS:      buildMS,
		SolveMS:      solveMS,
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		PeakRSSBytes: obs.PeakRSS(),
		Clusters:     dres.D.Count,
		Boundary:     dres.ShardStats.BoundaryEdges,
		Merged:       dres.ShardStats.Merged,
	}
	enc, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = os.Stdout.Write(enc)
	return err
}
