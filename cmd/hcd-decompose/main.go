// Command hcd-decompose computes a [φ, ρ] decomposition of a generated
// workload graph and prints the measured quality report.
//
// Usage:
//
//	hcd-decompose -graph grid3d:20 -algo fixed -k 4 -seed 1
//	hcd-decompose -graph tree:100000 -algo tree
//	hcd-decompose -graph mesh:80 -algo planar
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"hcd"
	"hcd/internal/cli"
)

func main() { cli.Main(run) }

func run() error {
	graphSpec := flag.String("graph", "grid3d:16", "workload graph spec (grid2d:S, grid3d:S, mesh:S, oct:S, tree:N, regular:N,D, unit2d:S)")
	algo := flag.String("algo", "fixed", "decomposition algorithm: tree | fixed | planar | minorfree")
	k := flag.Int("k", 4, "cluster size cap for -algo fixed")
	seed := flag.Int64("seed", 1, "random seed")
	hist := flag.Bool("hist", false, "print cluster size histogram")
	detail := flag.Int("detail", 0, "print the N worst clusters by closure conductance")
	merge := flag.Float64("merge", 0, "if > 0, fold singleton clusters into neighbors keeping closure conductance ≥ this floor")
	flag.Parse()

	g, err := cli.BuildGraph(*graphSpec, *seed)
	if err != nil {
		return err
	}
	start := time.Now()
	var d *hcd.Decomposition
	switch *algo {
	case "tree":
		d, err = hcd.DecomposeTree(g)
	case "fixed":
		d, err = hcd.DecomposeFixedDegree(g, *k, *seed)
	case "planar":
		var res *hcd.PlanarResult
		res, err = hcd.DecomposePlanar(g, hcd.DefaultPlanarOptions())
		if err == nil {
			d = res.D
			fmt.Printf("pipeline: core |W|=%d, cut |C|=%d, avg stretch %.2f\n",
				res.CoreSize, res.CutEdges, res.AvgStretch)
		}
	case "minorfree":
		var res *hcd.PlanarResult
		res, err = hcd.DecomposeMinorFree(g, *seed)
		if err == nil {
			d = res.D
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if *merge > 0 {
		var merges int
		d, merges = hcd.MergeSingletons(d, *merge)
		fmt.Printf("merged %d singleton clusters (floor φ ≥ %v)\n", merges, *merge)
	}
	if err := hcd.Validate(d); err != nil {
		return fmt.Errorf("decomposition invalid: %w", err)
	}
	rep := hcd.Evaluate(d)
	fmt.Printf("graph: %s  n=%d m=%d\n", *graphSpec, g.N(), g.M())
	fmt.Printf("algorithm: %s  time: %v\n", *algo, elapsed)
	t := cli.NewTable("metric", "value")
	t.Row("clusters", d.Count)
	t.Row("rho (n/clusters)", rep.Rho)
	t.Row("phi (min closure conductance)", rep.Phi)
	t.Row("phi exact", rep.PhiExact)
	t.Row("gamma (min in-cluster retention)", rep.GammaMin)
	t.Row("max cluster size", rep.MaxClusterSize)
	t.Row("singleton clusters", rep.Singletons)
	fmt.Print(t)
	if *hist {
		printHistogram(d)
	}
	if *detail > 0 {
		stats := hcd.Details(d)
		if len(stats) > *detail {
			stats = stats[:*detail]
		}
		for _, s := range stats {
			fmt.Println(s)
		}
	}
	if rep.Phi <= 0 {
		return fmt.Errorf("degenerate decomposition: φ = %v", rep.Phi)
	}
	return nil
}

func printHistogram(d *hcd.Decomposition) {
	sizes := make(map[int]int)
	for _, c := range d.Clusters() {
		sizes[len(c)]++
	}
	keys := make([]int, 0, len(sizes))
	for s := range sizes {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	t := cli.NewTable("cluster size", "count")
	for _, s := range keys {
		t.Row(s, sizes[s])
	}
	fmt.Print(t)
}
