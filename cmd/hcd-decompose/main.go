// Command hcd-decompose computes a [φ, ρ] decomposition of a generated
// workload graph and prints the measured quality report.
//
// Usage:
//
//	hcd-decompose -graph grid3d:20 -algo fixed -k 4 -seed 1
//	hcd-decompose -graph tree:100000 -algo tree
//	hcd-decompose -graph mesh:80 -algo planar
//	hcd-decompose -graph grid2d:64 -algo spectral -metrics
//	hcd-decompose -graph grid3d:16 -algo fixed -json -trace build.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"hcd"
	"hcd/internal/cli"
)

func main() { cli.Main(run) }

func run() (err error) {
	graphSpec := flag.String("graph", "grid3d:16", "workload graph spec (grid2d:S, grid3d:S, mesh:S, oct:S, tree:N, regular:N,D, unit2d:S)")
	algo := flag.String("algo", "fixed", "decomposition algorithm: tree | fixed | planar | minorfree | spectral")
	k := flag.Int("k", 4, "cluster size cap for -algo fixed")
	shards := flag.Int("shards", 1, "shard-parallel fixed-degree build: split the graph into this many shards (1 = single-pass)")
	seed := flag.Int64("seed", 1, "random seed")
	hist := flag.Bool("hist", false, "print cluster size histogram")
	detail := flag.Int("detail", 0, "print the N worst clusters by closure conductance")
	merge := flag.Float64("merge", 0, "if > 0, fold singleton clusters into neighbors keeping closure conductance ≥ this floor")
	metrics := flag.Bool("metrics", false, "print the aggregated build/cert metric registry (Prometheus text format)")
	jsonOut := flag.Bool("json", false, "print the aggregated metric registry as JSON")
	o := cli.ObsFlags()
	flag.Parse()

	method, ok := map[string]hcd.DecomposeMethod{
		"tree":      hcd.MethodTree,
		"fixed":     hcd.MethodFixedDegree,
		"planar":    hcd.MethodPlanar,
		"minorfree": hcd.MethodMinorFree,
		"spectral":  hcd.MethodSpectral,
	}[*algo]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	g, err := cli.BuildGraph(*graphSpec, *seed)
	if err != nil {
		return err
	}
	ctx, err := o.Start(context.Background())
	if err != nil {
		return err
	}
	defer func() {
		if cerr := o.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	reg := o.Registry
	if reg == nil && (*metrics || *jsonOut) {
		reg = hcd.NewMetricRegistry()
		ctx = hcd.WithMetricRegistry(ctx, reg)
	}

	opt := hcd.DefaultDecomposeOptions(method)
	opt.Seed = *seed
	if method == hcd.MethodFixedDegree {
		opt.SizeCap = *k
		opt.Shards = *shards
	}
	start := time.Now()
	res, err := hcd.DecomposeCtx(ctx, g, opt)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	d, rep := res.D, res.Report
	if res.B != nil {
		fmt.Printf("pipeline: core |W|=%d, cut |C|=%d, avg stretch %.2f\n",
			res.CoreSize, res.CutEdges, res.AvgStretch)
	}
	if ss := res.ShardStats; ss.Shards > 1 {
		fmt.Printf("shards: %d  boundary edges: %d  singletons: %d  merged: %d  rejected: %d\n",
			ss.Shards, ss.BoundaryEdges, ss.BoundarySingletons, ss.Merged, ss.Rejected)
	}
	if *merge > 0 {
		var merges int
		d, merges = hcd.MergeSingletons(d, *merge)
		fmt.Printf("merged %d singleton clusters (floor φ ≥ %v)\n", merges, *merge)
		rep = hcd.Evaluate(d)
	}
	if err := hcd.Validate(d); err != nil {
		return fmt.Errorf("decomposition invalid: %w", err)
	}
	fmt.Printf("graph: %s  n=%d m=%d\n", *graphSpec, g.N(), g.M())
	fmt.Printf("algorithm: %s  time: %v\n", *algo, elapsed)
	t := cli.NewTable("metric", "value")
	t.Row("clusters", d.Count)
	t.Row("rho (n/clusters)", rep.Rho)
	t.Row("phi (min closure conductance)", rep.Phi)
	t.Row("phi exact", rep.PhiExact)
	t.Row("gamma (min in-cluster retention)", rep.GammaMin)
	t.Row("max cluster size", rep.MaxClusterSize)
	t.Row("singleton clusters", rep.Singletons)
	fmt.Print(t)
	if len(res.Metrics.Stages) > 0 {
		st := cli.NewTable("stage", "time", "vertices", "edges")
		for _, s := range res.Metrics.Stages {
			st.Row(s.Name, s.Duration, s.Vertices, s.Edges)
		}
		fmt.Print(st)
	}
	if *hist {
		printHistogram(d)
	}
	if *detail > 0 {
		stats := hcd.Details(d)
		if len(stats) > *detail {
			stats = stats[:*detail]
		}
		for _, s := range stats {
			fmt.Println(s)
		}
	}
	if *jsonOut {
		if err := reg.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else if *metrics {
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if rep.Phi <= 0 {
		return fmt.Errorf("degenerate decomposition: φ = %v", rep.Phi)
	}
	return nil
}

func printHistogram(d *hcd.Decomposition) {
	sizes := make(map[int]int)
	for _, c := range d.Clusters() {
		sizes[len(c)]++
	}
	keys := make([]int, 0, len(sizes))
	for s := range sizes {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	t := cli.NewTable("cluster size", "count")
	for _, s := range keys {
		t.Row(s, sizes[s])
	}
	fmt.Print(t)
}
