// Command hcd-benchdiff is the performance regression gate: it compares a
// fresh BENCH_*.json record against the committed baseline and exits
// non-zero when anything regressed past the thresholds.
//
// Three metrics gate, with different semantics:
//
//   - ns/op: flagged when the new value exceeds baseline by more than
//     -max-regress (fractional; default 0.30 — generous, CI machines are
//     noisy). Benchmarks are matched with the GOMAXPROCS suffix stripped.
//   - allocs/op: same fractional threshold, except a baseline of zero
//     allocations is treated as an invariant — any increase fails.
//   - replay score: when both records carry a replay report (BENCH_replay.json),
//     the deterministic fitness score gates on an absolute drop larger than
//     -score-drop points. The score is bit-reproducible by construction, so
//     this check has no noise margin to hide behind.
//
// Benchmarks present in only one record are ignored: adding or retiring a
// benchmark is not a regression.
//
// Usage:
//
//	hcd-benchdiff -old BENCH_evaluate.json -new /tmp/bench_new.json
//	hcd-benchdiff -old BENCH_replay.json -new /tmp/replay_new.json -score-drop 5
package main

import (
	"flag"
	"fmt"
	"os"

	"hcd/internal/benchfmt"
	"hcd/internal/cli"
)

func main() { cli.Main(run) }

func run() error {
	oldPath := flag.String("old", "", "committed baseline record (required)")
	newPath := flag.String("new", "", "fresh record to gate (required)")
	maxRegress := flag.Float64("max-regress", 0.30, "tolerated fractional ns/op (and allocs/op) increase")
	scoreDrop := flag.Float64("score-drop", 5, "tolerated absolute replay fitness-score drop in points")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("hcd-benchdiff: -old and -new are both required")
	}
	read := func(path string) (benchfmt.Record, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return benchfmt.Record{}, fmt.Errorf("hcd-benchdiff: %w", err)
		}
		rec, err := benchfmt.Unmarshal(data)
		if err != nil {
			return benchfmt.Record{}, fmt.Errorf("hcd-benchdiff: %s: %w", path, err)
		}
		return rec, nil
	}
	oldRec, err := read(*oldPath)
	if err != nil {
		return err
	}
	newRec, err := read(*newPath)
	if err != nil {
		return err
	}

	regs := benchfmt.Diff(oldRec, newRec, benchfmt.Thresholds{
		MaxRegress: *maxRegress,
		ScoreDrop:  *scoreDrop,
	})
	if len(regs) == 0 {
		compared := len(newRec.Benchmarks)
		if _, ok := newRec.ReplayScore(); ok {
			compared++
		}
		fmt.Printf("hcd-benchdiff: no regressions (%s vs %s, %d entries compared)\n", *oldPath, *newPath, compared)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
	}
	return fmt.Errorf("hcd-benchdiff: %d regression(s) vs %s", len(regs), *oldPath)
}
