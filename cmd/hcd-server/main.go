// Command hcd-server exposes the hcd solver as a service: submit a graph
// once, poll its hierarchy build, then run solves against the cached
// hierarchy on warm engine pools. Tenants are rate-limited with per-tenant
// token buckets; overload answers 429 with Retry-After. The PR-5
// diagnostics mux (/metrics, /metrics.json, /debug/vars, /debug/pprof/*) is
// mounted on the same listener.
//
// Usage:
//
//	hcd-server -addr :8080
//	hcd-server -addr :8080 -max-handles 16 -max-bytes 536870912 -pool 4
//	hcd-server -addr :8080 -rate 100 -burst 200 -queue 64 -policy sjf
//	hcd-server -addr :8080 -state-dir /var/lib/hcd   # durable handles
//	hcd-server -addr :8080 -max-timeout 30s -breaker 3
//	hcd-server -addr :8080 -log-json -log-level info   # JSON access logs
//	hcd-server -smoke        # in-process smoke battery, exits 0/1
//
// With -state-dir, built hierarchies are snapshotted (checksummed binary
// format + write-ahead manifest) and restored on restart without rebuilding;
// corrupt snapshots are quarantined, never fatal. /healthz and /readyz serve
// probes; ?timeout_ms= gives requests a deadline budget capped by
// -max-timeout (expiry = 504, client disconnect = 408).
//
// Walkthrough:
//
//	curl -X POST 'localhost:8080/v1/graphs?spec=grid3d:12&wait=true'
//	curl localhost:8080/v1/graphs/g-1
//	curl -X POST -d '{"rhs":2,"seed":7}' localhost:8080/v1/graphs/g-1/solve
//	curl -X DELETE localhost:8080/v1/graphs/g-1
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hcd/internal/cli"
	"hcd/internal/serve"
)

func main() { cli.Main(run) }

func run() (err error) {
	addr := flag.String("addr", ":8080", "listen address")
	maxHandles := flag.Int("max-handles", 32, "cached graph handles before LRU eviction")
	maxBytes := flag.Int64("max-bytes", 1<<30, "byte budget for cached graphs + hierarchies")
	pool := flag.Int("pool", 2, "warm solve engines per graph handle")
	rate := flag.Float64("rate", 50, "admission tokens per second per tenant (1 token = 1 right-hand side)")
	burst := flag.Float64("burst", 100, "admission token bucket capacity per tenant")
	queue := flag.Int("queue", 64, "queued solve requests per tenant before 429")
	policy := flag.String("policy", "fcfs", "admission queue order: fcfs | sjf")
	stateDir := flag.String("state-dir", "", "durable handle state directory (empty = memory-only)")
	breaker := flag.Int("breaker", 3, "consecutive build failures before a handle degrades to the CG fallback (negative disables)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on per-request ?timeout_ms deadline budgets (0 = uncapped)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batching window: PCG solves against one handle arriving within this window coalesce into one block solve (0 = off)")
	batchWidth := flag.Int("batch-width", 16, "max right-hand sides coalesced per batch (fires early when full)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on SIGTERM")
	smoke := flag.Bool("smoke", false, "run the in-process smoke battery and exit")
	o := cli.ObsFlags()
	lg := cli.LogFlags()
	flag.Parse()

	logger, err := lg.Logger(os.Stdout)
	if err != nil {
		return err
	}

	// Start materializes -trace/-listen into a Tracer/Registry; the serve
	// layer threads them through every request itself, so the returned
	// context is not needed here.
	if _, err = o.Start(context.Background()); err != nil {
		return err
	}
	defer func() {
		if cerr := o.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	cfg := serve.Config{
		MaxHandles: *maxHandles,
		MaxBytes:   *maxBytes,
		PoolSize:   *pool,
		Admission: serve.AdmissionConfig{
			Rate: *rate, Burst: *burst, MaxQueue: *queue, Policy: serve.QueuePolicy(*policy),
		},
		StateDir:         *stateDir,
		BreakerThreshold: *breaker,
		MaxTimeout:       *maxTimeout,
		BatchWindow:      *batchWindow,
		BatchMaxWidth:    *batchWidth,
		Registry:         o.Registry,
		Tracer:           o.Tracer,
		Logger:           logger,
	}

	if *smoke {
		return runSmoke()
	}

	srv := serve.New(cfg)
	hs := &http.Server{Handler: srv.Handler()}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Listen explicitly so the actual bound address is printable — with
	// -addr :0 the chaos battery (and scripts) parse the port from this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if logger != nil {
		// Keep stdout machine-parseable: one structured record instead of
		// the plain banner the chaos battery greps for (it runs unlogged).
		logger.Info("listening", "addr", ln.Addr().String())
	} else {
		fmt.Printf("hcd-server listening on %s\n", ln.Addr())
	}

	select {
	case serr := <-errc:
		return serr
	case <-sigCtx.Done():
	}

	fmt.Fprintln(os.Stderr, "hcd-server draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if derr := srv.Drain(dctx); derr != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", derr)
	}
	if serr := hs.Shutdown(dctx); serr != nil {
		return serr
	}
	fmt.Fprintln(os.Stderr, "hcd-server stopped")
	return nil
}
