package main

// The -smoke battery: an in-process end-to-end exercise of the serving
// stack, used by `make server-smoke` and CI. It spins up two servers on
// loopback listeners — one with default admission for the caching checks,
// one with a starved token bucket for the overload checks — and fails on
// the first broken invariant:
//
//  1. submit → build → solve round trip converges
//  2. a second solve against the cached handle is a cache hit (counter
//     serve_handle_cache_hits advances; no hierarchy rebuild)
//  3. DELETE evicts; a solve against the evicted handle 404s
//  4. a saturated tenant gets 429 + Retry-After while a second tenant on
//     the same server keeps solving undisturbed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"hcd/internal/serve"
)

type smokeClient struct {
	base string
	hc   *http.Client
}

func (c *smokeClient) do(method, path, tenant string, body any) (int, map[string]any, http.Header, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, nil, nil, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	out := map[string]any{}
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		_ = json.Unmarshal(raw, &out)
	}
	return resp.StatusCode, out, resp.Header, nil
}

func runSmoke() error {
	fmt.Println("smoke: caching path")
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &smokeClient{base: ts.URL, hc: ts.Client()}

	// 1. Submit and build synchronously, then solve.
	code, body, _, err := c.do("POST", "/v1/graphs?spec=grid3d:10&wait=true", "", nil)
	if err != nil {
		return err
	}
	if code != http.StatusCreated || body["status"] != "ready" {
		return fmt.Errorf("smoke: submit: code %d body %v", code, body)
	}
	id := body["id"].(string)
	solve := map[string]any{"rhs": 1, "seed": 3}
	code, body, _, err = c.do("POST", "/v1/graphs/"+id+"/solve", "", solve)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("smoke: first solve: code %d body %v", code, body)
	}
	results := body["results"].([]any)
	if len(results) != 1 || results[0].(map[string]any)["converged"] != true {
		return fmt.Errorf("smoke: first solve did not converge: %v", results)
	}

	// 2. Second solve: must be a cache hit, no rebuild.
	before := srv.Registry().Counter("serve_handle_cache_hits").Value()
	code, body, _, err = c.do("POST", "/v1/graphs/"+id+"/solve", "", solve)
	if err != nil {
		return err
	}
	if code != http.StatusOK || body["cache_hit"] != true {
		return fmt.Errorf("smoke: second solve not a cache hit: code %d body %v", code, body)
	}
	if after := srv.Registry().Counter("serve_handle_cache_hits").Value(); after <= before {
		return fmt.Errorf("smoke: serve_handle_cache_hits did not advance (%d -> %d)", before, after)
	}
	if builds := srv.Registry().Counter(`serve_builds_total{outcome="ok"}`).Value(); builds != 1 {
		return fmt.Errorf("smoke: expected exactly 1 hierarchy build, saw %d", builds)
	}
	fmt.Println("smoke: cache hit confirmed, single build")

	// 3. Evict; the handle must be gone.
	if code, body, _, err = c.do("DELETE", "/v1/graphs/"+id, "", nil); err != nil || code != http.StatusNoContent {
		return fmt.Errorf("smoke: delete: code %d body %v err %v", code, body, err)
	}
	if code, _, _, err = c.do("POST", "/v1/graphs/"+id+"/solve", "", solve); err != nil || code != http.StatusNotFound {
		return fmt.Errorf("smoke: solve after delete: code %d err %v (want 404)", code, err)
	}
	fmt.Println("smoke: eviction confirmed")

	// 4. Overload isolation: a starved bucket (2-token burst, negligible
	// refill, no queue) throttles tenant "noisy" on its third request while
	// tenant "quiet" keeps its own full bucket.
	fmt.Println("smoke: admission path")
	srv2 := serve.New(serve.Config{
		Admission: serve.AdmissionConfig{Rate: 1e-9, Burst: 2, MaxQueue: 0},
	})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := &smokeClient{base: ts2.URL, hc: ts2.Client()}
	code, body, _, err = c2.do("POST", "/v1/graphs?spec=grid2d:12&wait=true", "", nil)
	if err != nil || code != http.StatusCreated {
		return fmt.Errorf("smoke: admission submit: code %d err %v", code, err)
	}
	id2 := body["id"].(string)
	for i := 0; i < 2; i++ {
		code, body, _, err = c2.do("POST", "/v1/graphs/"+id2+"/solve", "noisy", solve)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("smoke: noisy solve %d: code %d body %v err %v", i, code, body, err)
		}
	}
	code, body, hdr, err := c2.do("POST", "/v1/graphs/"+id2+"/solve", "noisy", solve)
	if err != nil {
		return err
	}
	if code != http.StatusTooManyRequests {
		return fmt.Errorf("smoke: saturated tenant: code %d body %v (want 429)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		return fmt.Errorf("smoke: 429 missing Retry-After header")
	}
	code, body, _, err = c2.do("POST", "/v1/graphs/"+id2+"/solve", "quiet", solve)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("smoke: quiet tenant degraded by noisy: code %d body %v err %v", code, body, err)
	}
	fmt.Println("smoke: 429 + Retry-After on saturation; other tenant unaffected")
	fmt.Println("smoke: PASS")
	return nil
}
