// Command hcd-benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON record: one entry per benchmark with ns/op,
// B/op, allocs/op, the measured iteration count, and the host parallelism
// the run had available, stamped with the git commit the tree was at and
// optional record tags. It backs the `make bench-json` target, which writes
// BENCH_evaluate.json — the committed record behind BENCH.md and the
// hcd-benchdiff regression gate.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEvaluate$' -benchmem . | hcd-benchjson -out BENCH_evaluate.json
//	go test -bench . -benchmem ./... | hcd-benchjson -tags evaluate,ci
//
// With no -out flag the JSON goes to stdout. Non-benchmark lines (the ok/PASS
// trailer, goos/goarch headers) pass through untouched on stderr so the
// underlying `go test` output stays visible in logs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"hcd/internal/benchfmt"
	"hcd/internal/cli"
)

func main() { cli.Main(run) }

func run() error {
	out := flag.String("out", "", "output file (default stdout)")
	tags := flag.String("tags", "", "comma-separated record tags (e.g. evaluate,ci)")
	flag.Parse()

	var tagList []string
	for _, t := range strings.Split(*tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tagList = append(tagList, t)
		}
	}
	rec := benchfmt.NewRecord(tagList...)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := benchfmt.ParseBenchLine(line); ok {
			rec.Benchmarks = append(rec.Benchmarks, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("hcd-benchjson: reading stdin: %w", err)
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("hcd-benchjson: no benchmark lines on stdin (expected `go test -bench` output)")
	}
	buf, err := rec.Marshal()
	if err != nil {
		return fmt.Errorf("hcd-benchjson: %w", err)
	}
	if *out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}
