// Command hcd-benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON record: one entry per benchmark with ns/op,
// B/op, allocs/op, the measured iteration count, and the host parallelism
// the run had available. It backs the `make bench-json` target, which writes
// BENCH_evaluate.json — the committed record behind BENCH.md.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEvaluate$' -benchmem . | hcd-benchjson -out BENCH_evaluate.json
//
// With no -out flag the JSON goes to stdout. Non-benchmark lines (the ok/PASS
// trailer, goos/goarch headers) pass through untouched on stderr so the
// underlying `go test` output stays visible in logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line in the emitted JSON.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Procs is the GOMAXPROCS the benchmark ran at, decoded from the "-N"
	// suffix go test appends to the name (0 when the name carries none).
	Procs int `json:"procs,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "rhs/sec" from the
	// block-solve benchmark) keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Record is the top-level JSON document.
type Record struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rec := Record{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseBenchLine(line); ok {
			rec.Benchmarks = append(rec.Benchmarks, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("hcd-benchjson: reading stdin: %v", err)
	}
	if len(rec.Benchmarks) == 0 {
		log.Fatal("hcd-benchjson: no benchmark lines on stdin (expected `go test -bench` output)")
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatalf("hcd-benchjson: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("hcd-benchjson: %v", err)
	}
}

// parseBenchLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkEvaluate-8   	       3	 412345678 ns/op	 1234 B/op	  56 allocs/op
//
// returning ok=false for anything that is not a benchmark result.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if p, perr := strconv.Atoi(r.Name[i+1:]); perr == nil && p > 0 {
			r.Procs = p
		}
	}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
			seen = true
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		default:
			// Custom b.ReportMetric units ("rhs/sec", "MB/s", ...).
			if strings.ContainsRune(unit, '/') {
				if v, verr := strconv.ParseFloat(val, 64); verr == nil {
					if r.Metrics == nil {
						r.Metrics = make(map[string]float64)
					}
					r.Metrics[unit] = v
				}
			}
		}
	}
	return r, seen
}
