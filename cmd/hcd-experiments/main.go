// Command hcd-experiments runs the full evaluation suite (DESIGN.md §4):
// one experiment per paper artifact, printing paper-vs-measured tables.
// These runs are the source of the numbers recorded in EXPERIMENTS.md.
//
// Usage:
//
//	hcd-experiments            # everything, laptop-scale sizes
//	hcd-experiments -e E2      # one experiment
//	hcd-experiments -full      # paper-scale sizes (E2 uses 10⁶ vertices)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"hcd"
	"hcd/internal/cli"
	"hcd/internal/mst"
)

var (
	full    = flag.Bool("full", false, "run paper-scale sizes (slower)")
	metrics = flag.Bool("metrics", false, "print per-solve metrics (matvecs, applies, phase times) after each PCG table")

	// obsCtx is the root context of every experiment; main swaps in the
	// instrumented context when -trace/-listen are set, so the context-aware
	// paths (DecomposeCtx and everything under it) record spans and publish
	// registry metrics.
	obsCtx = context.Background()
)

// report prints one labelled solve-metrics line when -metrics is set.
func report(label string, m hcd.SolveMetrics) {
	if !*metrics {
		return
	}
	fmt.Printf("metrics[%s]: matvecs=%d precond-applies=%d iterations=%d setup=%v iterate=%v total=%v final-residual=%.3g\n",
		label, m.MatVecs, m.PrecondApplies, m.Iterations,
		m.SetupTime.Round(time.Microsecond), m.IterTime.Round(time.Microsecond),
		m.TotalTime.Round(time.Microsecond), m.FinalResidual)
}

// reportBuild prints one labelled build-metrics line (per-stage wall time,
// sizes, scratch allocations) when -metrics is set — the construction-side
// counterpart of report, so build and solve costs read side by side.
func reportBuild(label string, m hcd.BuildMetrics) {
	if !*metrics {
		return
	}
	fmt.Printf("build[%s]: %s\n", label, m)
}

func main() {
	sel := flag.String("e", "", "comma-separated experiment ids (E1..E9,A1..A3); empty = all")
	o := cli.ObsFlags()
	flag.Parse()
	var err error
	obsCtx, err = o.Start(obsCtx)
	if err != nil {
		log.Fatal(err)
	}
	if *metrics {
		obsCtx = o.EnsureRegistry(obsCtx)
	}
	defer func() {
		if *metrics && o.Registry != nil {
			fmt.Println("\nregistry:")
			_ = o.Registry.WritePrometheus(os.Stdout)
		}
		if cerr := o.Close(); cerr != nil {
			log.Fatal(cerr)
		}
	}()
	want := map[string]bool{}
	for _, id := range strings.Split(*sel, ",") {
		if id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	all := []struct {
		id   string
		desc string
		run  func()
	}{
		{"E1", "Figure 6: Steiner vs subgraph PCG at matched reduction", e1},
		{"E2", "Remark 1: clustering vs max-weight spanning tree build time", e2},
		{"E3", "Theorem 2.1: [φ, ρ] tree decompositions", e3},
		{"E4", "Theorem 2.2: planar pipeline, φ·ρ across sizes", e4},
		{"E5", "Theorem 3.5: σ(S_P, A) vs 3(1+2/φ³)", e5},
		{"E6", "Theorem 4.1: eigenvector alignment vs bound", e6},
		{"E7", "Section 3.1: fixed-degree clustering quality", e7},
		{"E8", "Hierarchy: multilevel iterations across sizes", e8},
		{"E9", "Theorem 2.3: minor-free pipeline (low-stretch base)", e9},
		{"E10", "Top-down spectral recursion vs bottom-up clustering", e10},
		{"E11", "Parallel scaling of the §3.1 clustering and SpMV", e11},
		{"A1", "Ablation: base tree choice in the planar pipeline", a1},
		{"A4", "Ablation: monolithic vs miniaturized subgraph baseline (Fig 6 setup)", a4},
		{"A5", "Ablation: anisotropic grids — weight-aware clustering vs Jacobi", a5},
		{"A2", "Ablation: perturbation on/off in Section 3.1", a2},
		{"A3", "Ablation: cluster cap k vs quality trade-off", a3},
	}
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("\n=== %s — %s ===\n", e.id, e.desc)
		start := time.Now()
		e.run()
		fmt.Printf("(%s took %v)\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

// e1 reproduces the Figure 6 comparison and reports iterations-to-tolerance.
func e1() {
	side := 16
	if *full {
		side = 24
	}
	g := hcd.OCT3D(side, side, side, hcd.DefaultOCTOptions())
	b := cli.MeanFreeRHS(g.N(), 7)
	dopt := hcd.DefaultDecomposeOptions(hcd.MethodFixedDegree)
	dopt.SkipReport = true
	dres := must(hcd.DecomposeCtx(obsCtx, g, dopt))
	d := dres.D
	reportBuild("steiner clustering", dres.Metrics)
	sp := must(hcd.NewSteinerPreconditioner(d))
	subOpt := hcd.DefaultPlanarOptions()
	subOpt.ExtraFraction = 0.12
	sub := must(hcd.NewSubgraphPreconditioner(g, subOpt, g.N()))
	opt := hcd.DefaultSolveOptions()
	sres := must(solvePCG(g, b, sp, opt))
	gres := must(solvePCG(g, b, sub.P, opt))
	t := cli.NewTable("preconditioner", "reduction", "iterations", "converged", "res[10]/res[0]")
	t.Row("steiner", float64(g.N())/float64(d.Count), sres.Iterations, sres.Converged, rat(sres.Residuals, 10))
	t.Row("subgraph", float64(g.N())/float64(sub.CoreSize), gres.Iterations, gres.Converged, rat(gres.Residuals, 10))
	fmt.Print(t)
	report("steiner", sres.Metrics)
	report("subgraph", gres.Metrics)
	fmt.Printf("paper shape: Steiner converges several times faster at matched reduction ≈ 4.\n")
	fmt.Printf("speedup (iterations): %.2fx\n", float64(gres.Iterations)/float64(sres.Iterations))
}

func rat(hist []float64, i int) float64 {
	if len(hist) == 0 {
		return 0
	}
	if i >= len(hist) {
		i = len(hist) - 1
	}
	return hist[i] / hist[0]
}

// e2 times the Section 3.1 clustering against bare spanning tree builds on
// a weighted 3D grid (paper: 10⁶ vertices, ≥ 4× even vs Boost's MST).
func e2() {
	side := 50
	if *full {
		side = 100 // 10⁶ vertices, the paper's instance size
	}
	g := hcd.Grid3D(side, side, side, hcd.LognormalWeights(1), 1)
	fmt.Printf("3D grid %d^3: n=%d m=%d\n", side, g.N(), g.M())
	timeIt := func(name string, f func()) time.Duration {
		start := time.Now()
		f()
		el := time.Since(start)
		return el
	}
	tCluster := timeIt("clustering", func() { must(decomposeFixedDegree(g, 4, 1)) })
	tKruskal := timeIt("kruskal", func() { mst.Kruskal(g, mst.Max) })
	tPrim := timeIt("prim", func() { mst.Prim(g, mst.Max) })
	tBoruvka := timeIt("boruvka", func() { mst.Boruvka(g, mst.Max, false) })
	tBoruvkaP := timeIt("boruvka-par", func() { mst.Boruvka(g, mst.Max, true) })
	t := cli.NewTable("construction", "time", "vs clustering")
	t.Row("§3.1 clustering (parallel)", tCluster, 1.0)
	t.Row("Kruskal max-ST", tKruskal, float64(tKruskal)/float64(tCluster))
	t.Row("Prim max-ST", tPrim, float64(tPrim)/float64(tCluster))
	t.Row("Borůvka max-ST", tBoruvka, float64(tBoruvka)/float64(tCluster))
	t.Row("Borůvka max-ST (parallel)", tBoruvkaP, float64(tBoruvkaP)/float64(tCluster))
	fmt.Print(t)
	fmt.Println("paper shape: clustering ≥ 4× faster than building just the spanning tree.")
}

// e3 sweeps random trees and verifies the Theorem 2.1 guarantees.
func e3() {
	t := cli.NewTable("n", "trees", "min φ", "min ρ", "mean ρ", "exact")
	for _, n := range []int{100, 1000, 10000, 100000} {
		trees := 20
		if n >= 10000 {
			trees = 3
		}
		minPhi, minRho, sumRho := math.Inf(1), math.Inf(1), 0.0
		exact := true
		for s := 0; s < trees; s++ {
			g := hcd.RandomTree(n, hcd.UniformWeights(0.1, 10), int64(s+1))
			d := must(decomposeTree(g))
			rep := hcd.Evaluate(d)
			minPhi = math.Min(minPhi, rep.Phi)
			minRho = math.Min(minRho, rep.Rho)
			sumRho += rep.Rho
			exact = exact && rep.PhiExact
		}
		t.Row(n, trees, minPhi, minRho, sumRho/float64(trees), exact)
	}
	fmt.Print(t)
	fmt.Println("paper claim: [1/2, 6/5]; certified floor of the construction is φ ≥ 1/3")
	fmt.Println("(the 1/3 is tight already on unit-weight 3-chains; see EXPERIMENTS.md E3).")
}

// e4 runs the planar pipeline across sizes and reports φ·ρ.
func e4() {
	t := cli.NewTable("side", "n", "φ", "ρ", "φ·ρ", "core |W|", "cut |C|")
	sides := []int{20, 40, 60}
	if *full {
		sides = append(sides, 100, 150)
	}
	for _, side := range sides {
		g := hcd.PlanarMesh(side, side, hcd.LognormalWeights(1), 3)
		opt := hcd.DefaultDecomposeOptions(hcd.MethodPlanar)
		res := must(hcd.DecomposeCtx(obsCtx, g, opt))
		rep := res.Report
		t.Row(side, g.N(), rep.Phi, rep.Rho, rep.Phi*rep.Rho, res.CoreSize, res.CutEdges)
		reportBuild(fmt.Sprintf("planar %d", side), res.Metrics)
	}
	fmt.Print(t)
	fmt.Println("paper shape: φ·ρ bounded below by a constant as n grows.")
}

// e5 compares measured σ(S_P, A) against the Theorem 3.5 bound.
func e5() {
	t := cli.NewTable("graph", "φ (exact)", "σ(B,A) measured", "bound 3(1+2/φ³)", "slack")
	rng := rand.New(rand.NewSource(5))
	run := func(name string, g *hcd.Graph, d *hcd.Decomposition) {
		rep := hcd.Evaluate(d)
		p := must(hcd.NewSteinerPreconditioner(d))
		probe := cli.MeanFreeRHS(g.N(), rng.Int63())
		nums := must(hcd.MeasureSupport(g, p, probe, 80))
		bound := 3 * (1 + 2/math.Pow(rep.Phi, 3))
		t.Row(name, rep.Phi, nums.SigmaBA, bound, bound/nums.SigmaBA)
	}
	tree := hcd.RandomTree(2000, hcd.UniformWeights(0.1, 10), 2)
	run("tree:2000", tree, must(decomposeTree(tree)))
	grid := hcd.Grid3D(10, 10, 10, hcd.LognormalWeights(1), 3)
	run("grid3d:10", grid, must(decomposeFixedDegree(grid, 4, 1)))
	mesh := hcd.PlanarMesh(24, 24, hcd.LognormalWeights(1), 4)
	run("mesh:24", mesh, must(decomposePlanar(mesh, hcd.DefaultPlanarOptions())).D)
	fmt.Print(t)
	fmt.Println("paper claim: σ(S_P, A) ≤ 3(1 + 2/φ³); slack > 1 means the bound holds.")
}

// e6 measures the Theorem 4.1 alignment of low eigenvectors.
func e6() {
	g := hcd.Grid2D(24, 24, hcd.LognormalWeights(1), 5)
	d := must(decomposeFixedDegree(g, 4, 1))
	rows, err := hcd.Portrait(d, 5, 1)
	if err != nil {
		log.Fatal(err)
	}
	t := cli.NewTable("i", "λᵢ", "1−alignment (measured)", "bound 3λᵢ(1+2/φ³)", "holds")
	for _, r := range rows {
		t.Row(r.Index, r.Lambda, r.Misalignment, r.Bound, r.Holds)
	}
	fmt.Print(t)
	fmt.Println("paper claim: low eigenvectors lie near Range(D^{1/2}R).")
}

// e7 sweeps graph families for the Section 3.1 clustering.
func e7() {
	t := cli.NewTable("graph", "d_max", "max |C|", "φ", "paper bound 1/(2d²|C|)", "ρ", "κ(A,B)")
	rng := rand.New(rand.NewSource(7))
	for _, spec := range []string{"grid3d:10", "regular:600,4", "regular:600,6", "mesh:20"} {
		g := must(cli.BuildGraph(spec, 3))
		d := must(decomposeFixedDegree(g, 4, 1))
		rep := hcd.Evaluate(d)
		p := must(hcd.NewSteinerPreconditioner(d))
		nums := must(hcd.MeasureSupport(g, p, cli.MeanFreeRHS(g.N(), rng.Int63()), 60))
		dmax := g.MaxDegree()
		bound := 1.0 / (2 * float64(dmax*dmax) * float64(rep.MaxClusterSize))
		t.Row(spec, dmax, rep.MaxClusterSize, rep.Phi, bound, rep.Rho, nums.Kappa)
	}
	fmt.Print(t)
	fmt.Println("paper claim: [Ω(1/(d²k)), 2] decomposition, constant condition number.")
}

// e8 shows multilevel iteration counts staying nearly flat in n.
func e8() {
	t := cli.NewTable("side", "n", "levels", "iterations", "converged")
	sides := []int{10, 14, 18, 22}
	if *full {
		sides = append(sides, 30, 40)
	}
	for _, side := range sides {
		g := hcd.OCT3D(side, side, side, hcd.DefaultOCTOptions())
		h := must(hcd.NewHierarchy(g, hcd.DefaultHierarchyOptions()))
		res := must(solvePCG(g, cli.MeanFreeRHS(g.N(), 9), h, hcd.DefaultSolveOptions()))
		t.Row(side, g.N(), h.Depth(), res.Iterations, res.Converged)
		report(fmt.Sprintf("hierarchy %d³", side), res.Metrics)
	}
	fmt.Print(t)
	fmt.Println("expected shape: iterations grow at most mildly with n (multilevel behaviour).")
}

// e9 runs the minor-free (low-stretch tree) pipeline across sizes.
func e9() {
	t := cli.NewTable("side", "n", "φ", "ρ", "avg stretch", "n·φ·ρ / (n/log³n)")
	for _, side := range []int{20, 40, 60} {
		g := hcd.Grid2D(side, side, hcd.LognormalWeights(1.5), 11)
		res := must(decomposeMinorFree(g, 2))
		rep := hcd.Evaluate(res.D)
		logn := math.Log(float64(g.N()))
		t.Row(side, g.N(), rep.Phi, rep.Rho, res.AvgStretch, rep.Phi*logn*logn*logn)
	}
	fmt.Print(t)
	fmt.Println("paper shape: φ degrades at most polylogarithmically (Θ(1/log³n) with s fixed).")
}

// e11 measures strong scaling of the embarrassingly parallel pieces: the
// §3.1 clustering and the Laplacian SpMV, sweeping GOMAXPROCS. The PRAM
// "O(log n) time, linear work" claims translate here to real threads.
func e11() {
	maxProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(maxProcs)
	side := 60
	if *full {
		side = 100
	}
	g := hcd.Grid3D(side, side, side, hcd.LognormalWeights(1), 1)
	x := make([]float64, g.N())
	y := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i % 17)
	}
	t := cli.NewTable("threads", "clustering", "speedup", "SpMV ×20", "speedup")
	var base1, base2 time.Duration
	for p := 1; p <= maxProcs; p *= 2 {
		runtime.GOMAXPROCS(p)
		start := time.Now()
		must(decomposeFixedDegree(g, 4, 1))
		t1 := time.Since(start)
		start = time.Now()
		for rep := 0; rep < 20; rep++ {
			g.LapMul(y, x)
		}
		t2 := time.Since(start)
		if p == 1 {
			base1, base2 = t1, t2
		}
		t.Row(p, t1.Round(time.Millisecond), float64(base1)/float64(t1),
			t2.Round(time.Millisecond), float64(base2)/float64(t2))
	}
	fmt.Print(t)
	fmt.Printf("(3D grid %d³, n=%d; machine has %d threads)\n", side, side*side*side, maxProcs)
}

// a5 runs the anisotropic hard case: strong z-coupling defeats pointwise
// Jacobi, while the heaviest-edge clustering follows the strong direction
// and coarsens it away (the semicoarsening effect, a CMG hallmark).
func a5() {
	g := hcd.Grid3DAnisotropic(12, 12, 12, 1, 1, 1000)
	b := cli.MeanFreeRHS(g.N(), 29)
	t := cli.NewTable("preconditioner", "PCG iters", "converged")
	jr := must(solvePCG(g, b, hcd.JacobiPreconditioner(g), hcd.DefaultSolveOptions()))
	t.Row("jacobi", jr.Iterations, jr.Converged)
	d := must(decomposeFixedDegree(g, 4, 1))
	sp := must(hcd.NewSteinerPreconditioner(d))
	sr := must(solvePCG(g, b, sp, hcd.DefaultSolveOptions()))
	t.Row("steiner (heaviest-edge clusters)", sr.Iterations, sr.Converged)
	h := must(hcd.NewHierarchy(g, hcd.DefaultHierarchyOptions()))
	hr := must(solvePCG(g, b, h, hcd.DefaultSolveOptions()))
	t.Row("steiner hierarchy", hr.Iterations, hr.Converged)
	fmt.Print(t)
	report("jacobi", jr.Metrics)
	report("steiner", sr.Metrics)
	report("hierarchy", hr.Metrics)
	fmt.Println("shape: heaviest-edge clusters align with the strong (z) direction,")
	fmt.Println("so the quotient removes the stiff coupling pointwise methods choke on.")
}

// e10 contrasts the paper's bottom-up constructions with the top-down
// recursive spectral baseline of Kannan–Vempala–Vetta the introduction
// analyzes: the recursion controls conductance directly but pays an
// eigensolve per split and has no reduction guarantee.
func e10() {
	t := cli.NewTable("method", "clusters", "ρ", "φ", "γ_avg (cut fraction)", "eigensolves", "time")
	g := hcd.Grid2D(24, 24, hcd.LognormalWeights(1), 21)
	start := time.Now()
	dBot := must(decomposeFixedDegree(g, 4, 1))
	tBot := time.Since(start)
	rBot := hcd.Evaluate(dBot)
	t.Row("bottom-up §3.1", dBot.Count, rBot.Rho, rBot.Phi, rBot.CutFraction, 0, tBot.Round(time.Microsecond))
	start = time.Now()
	opt := hcd.DefaultSpectralCutOptions()
	sres2, err := hcd.DecomposeCtx(obsCtx, g,
		hcd.DecomposeOptions{Method: hcd.MethodSpectral, Spectral: opt, SkipReport: true})
	if err != nil {
		log.Fatal(err)
	}
	dTop, st := sres2.D, sres2.SpectralStats
	tTop := time.Since(start)
	rTop := hcd.Evaluate(dTop)
	t.Row("top-down spectral", dTop.Count, rTop.Rho, rTop.Phi, rTop.CutFraction, st.EigenCalls, tTop.Round(time.Microsecond))
	fmt.Print(t)
	fmt.Println("shape: bottom-up guarantees ρ ≥ 2 and runs ~3 orders of magnitude")
	fmt.Println("faster; top-down needs an eigensolve per split, controls only the")
	fmt.Println("induced (not closure) conductance, and has no ρ guarantee — the")
	fmt.Println("paper's argument for bottom-up constructions.")
}

// a1 ablates the base tree choice in the planar pipeline.
func a1() {
	t := cli.NewTable("base tree", "φ", "ρ", "avg stretch", "PCG iters (as subgraph precond)")
	g := hcd.PlanarMesh(40, 40, hcd.LognormalWeights(1.5), 13)
	b := cli.MeanFreeRHS(g.N(), 17)
	for _, base := range []struct {
		name string
		b    hcd.BaseTree
	}{{"max-weight", hcd.MaxWeightTree}, {"low-stretch (AKPW)", hcd.LowStretchTree}} {
		opt := hcd.DefaultPlanarOptions()
		opt.Base = base.b
		res := must(decomposePlanar(g, opt))
		rep := hcd.Evaluate(res.D)
		sub := must(hcd.NewSubgraphPreconditioner(g, opt, g.N()))
		sres := must(solvePCG(g, b, sub.P, hcd.DefaultSolveOptions()))
		t.Row(base.name, rep.Phi, rep.Rho, res.AvgStretch, sres.Iterations)
	}
	fmt.Print(t)
}

// a4 compares the two ways to build the Figure 6 subgraph baseline — the
// monolithic spanning-tree construction vs the block miniaturization the
// paper actually used — and the Steiner preconditioner, all on one system.
func a4() {
	side := 16
	g := hcd.OCT3D(side, side, side, hcd.DefaultOCTOptions())
	b := cli.MeanFreeRHS(g.N(), 23)
	t := cli.NewTable("preconditioner", "build", "core/quotient", "reduction", "PCG iters")
	run := func(name string, build func() (hcd.Preconditioner, int, error)) {
		start := time.Now()
		p, size, err := build()
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		res := must(solvePCG(g, b, p, hcd.DefaultSolveOptions()))
		t.Row(name, el.Round(time.Millisecond), size, float64(g.N())/float64(size), res.Iterations)
	}
	run("subgraph (monolithic tree)", func() (hcd.Preconditioner, int, error) {
		sub, err := hcd.NewSubgraphPreconditionerMatched(g, 4.5, 1)
		if err != nil {
			return nil, 0, err
		}
		return sub.P, sub.CoreSize, nil
	})
	run("subgraph (miniaturized)", func() (hcd.Preconditioner, int, error) {
		sub, err := hcd.NewGridSubgraphPreconditioner(g, side, side, side, 3)
		if err != nil {
			return nil, 0, err
		}
		return sub.P, sub.CoreSize, nil
	})
	run("steiner (§3.1)", func() (hcd.Preconditioner, int, error) {
		d, err := decomposeFixedDegree(g, 4, 1)
		if err != nil {
			return nil, 0, err
		}
		p, err := hcd.NewSteinerPreconditioner(d)
		return p, d.Count, err
	})
	fmt.Print(t)
	fmt.Println("paper setup: Fig 6's subgraph baseline used the miniaturized build;")
	fmt.Println("the Steiner preconditioner still wins on iterations and build time.")
}

// a2 ablates the random perturbation of Section 3.1 on tie-heavy inputs.
func a2() {
	// Unit-weight grids are all ties: without perturbation the heaviest-
	// edge choice is arbitrary; the deterministic hash stands in for the
	// paper's random factor and must still produce a forest and ρ ≥ 2.
	t := cli.NewTable("weights", "φ", "ρ", "singletons")
	for _, w := range []struct {
		name string
		g    *hcd.Graph
	}{
		{"unit (all ties)", hcd.Grid2D(30, 30, nil, 1)},
		{"lognormal σ=1", hcd.Grid2D(30, 30, hcd.LognormalWeights(1), 1)},
	} {
		d := must(decomposeFixedDegree(w.g, 4, 1))
		rep := hcd.Evaluate(d)
		t.Row(w.name, rep.Phi, rep.Rho, rep.Singletons)
	}
	fmt.Print(t)
	fmt.Println("shape: the perturbation makes the construction robust to ties at no quality cost.")
}

// a3 sweeps the cluster cap k: reduction vs condition number trade-off.
func a3() {
	g := hcd.Grid3D(12, 12, 12, hcd.LognormalWeights(1), 1)
	rng := rand.New(rand.NewSource(19))
	t := cli.NewTable("k", "clusters", "ρ", "φ", "κ(A,B)", "PCG iters")
	for _, k := range []int{2, 3, 4, 6, 8} {
		d := must(decomposeFixedDegree(g, k, 1))
		rep := hcd.Evaluate(d)
		p := must(hcd.NewSteinerPreconditioner(d))
		nums := must(hcd.MeasureSupport(g, p, cli.MeanFreeRHS(g.N(), rng.Int63()), 60))
		res := must(solvePCG(g, cli.MeanFreeRHS(g.N(), rng.Int63()), p, hcd.DefaultSolveOptions()))
		t.Row(k, d.Count, rep.Rho, rep.Phi, nums.Kappa, res.Iterations)
	}
	fmt.Print(t)
	fmt.Println("shape: bigger k → more reduction but worse conductance/condition number.")
}

// Context-ful wrappers over the one-shot entry points the experiments used
// to call (hcd.DecomposeFixedDegree and friends are deprecated): every build
// and solve routes through obsCtx, so -trace/-listen observe the experiment
// runs too.
func solvePCG(g *hcd.Graph, b []float64, m hcd.Preconditioner, opt hcd.SolveOptions) (hcd.SolveResult, error) {
	return hcd.SolvePCGCtx(obsCtx, g, b, m, opt)
}

func decomposeTree(g *hcd.Graph) (*hcd.Decomposition, error) {
	res, err := hcd.DecomposeCtx(obsCtx, g,
		hcd.DecomposeOptions{Method: hcd.MethodTree, SkipReport: true})
	if err != nil {
		return nil, err
	}
	return res.D, nil
}

func decomposeFixedDegree(g *hcd.Graph, sizeCap int, seed int64) (*hcd.Decomposition, error) {
	res, err := hcd.DecomposeCtx(obsCtx, g, hcd.DecomposeOptions{
		Method: hcd.MethodFixedDegree, SizeCap: sizeCap, Seed: seed, SkipReport: true,
	})
	if err != nil {
		return nil, err
	}
	return res.D, nil
}

func decomposePlanar(g *hcd.Graph, opt hcd.PlanarOptions) (*hcd.DecomposeResult, error) {
	return hcd.DecomposeCtx(obsCtx, g, hcd.DecomposeOptions{
		Method: hcd.MethodPlanar, Base: opt.Base,
		ExtraFraction: opt.ExtraFraction, Seed: opt.Seed, SkipReport: true,
	})
}

func decomposeMinorFree(g *hcd.Graph, seed int64) (*hcd.DecomposeResult, error) {
	opt := hcd.DefaultDecomposeOptions(hcd.MethodMinorFree)
	opt.Seed = seed
	opt.SkipReport = true
	return hcd.DecomposeCtx(obsCtx, g, opt)
}
