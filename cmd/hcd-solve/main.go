// Command hcd-solve solves a graph Laplacian system A·x = b on a generated
// workload with a selectable preconditioner and reports convergence.
//
// Usage:
//
//	hcd-solve -graph oct:16 -precond hierarchy
//	hcd-solve -graph grid3d:20 -precond steiner -tol 1e-10
//	hcd-solve -graph grid3d:32 -precond hierarchy -metrics -timeout 30s
//	hcd-solve -graph grid3d:16 -resilient -trace trace.json
//	hcd-solve -graph grid3d:24 -listen :6060
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"hcd"
	"hcd/internal/cli"
	"hcd/internal/obs"
)

func main() { cli.Main(run) }

func run() (err error) {
	graphSpec := flag.String("graph", "oct:12", "workload graph spec")
	precond := flag.String("precond", "hierarchy", "preconditioner: none | jacobi | steiner | subgraph | tree | hierarchy")
	method := flag.String("method", "pcg", "iteration: pcg | chebyshev")
	chebIters := flag.Int("cheb-iters", 120, "Chebyshev iteration count")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance")
	k := flag.Int("k", 4, "cluster size cap for steiner/hierarchy")
	seed := flag.Int64("seed", 1, "random seed")
	history := flag.Bool("history", false, "print the full residual history")
	metrics := flag.Bool("metrics", false, "print per-solve metrics (matvecs, applies, phase times)")
	stream := flag.Bool("stream", false, "stream residual norms to stderr as the solve iterates")
	resilient := flag.Bool("resilient", false, "solve through the resilient fallback ladder (ignores -precond/-method)")
	timeout := flag.Duration("timeout", 0, "solve deadline (0 = none); an expired deadline cancels the iteration")
	o := cli.ObsFlags()
	flag.Parse()

	g, err := cli.BuildGraph(*graphSpec, *seed)
	if err != nil {
		return err
	}
	b := cli.MeanFreeRHS(g.N(), *seed+100)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, err = o.Start(ctx)
	if err != nil {
		return err
	}
	if *metrics {
		ctx = o.EnsureRegistry(ctx)
	}
	defer func() {
		if cerr := o.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	var observer hcd.IterationObserver
	if o.Tracer != nil || o.Registry != nil || *stream {
		var ws hcd.IterationObserver
		if *stream {
			ws = obs.StreamResiduals(os.Stderr)
		}
		observer = obs.MultiObserver(
			obs.TraceResiduals(o.Tracer, "residual"),
			obs.HistogramResiduals(o.Registry, "hcd_solve_residual"),
			ws,
		)
	}

	if *resilient {
		ropt := hcd.DefaultResilienceOptions()
		ropt.Solve.Tol = *tol
		ropt.Solve.Observer = observer
		ropt.Hierarchy.SizeCap = *k
		ropt.Hierarchy.Seed = *seed
		solveStart := time.Now()
		res, rep, rerr := hcd.SolveResilient(ctx, g, b, ropt)
		solveTime := time.Since(solveStart)
		fmt.Printf("graph: %s  n=%d m=%d\n", *graphSpec, g.N(), g.M())
		fmt.Printf("ladder: %s\n", rep.String())
		if rerr != nil {
			return rerr
		}
		fmt.Printf("rung: %s  recovered: %v\n", rep.Rung, rep.Recovered)
		fmt.Printf("outcome: %s  iterations: %d  solve: %v\n", res.Outcome, res.Iterations, solveTime)
		if *metrics {
			printMetrics(res.Metrics)
		}
		printRegistry(o, *metrics)
		return nil
	}

	buildStart := time.Now()
	var m hcd.Preconditioner
	switch *precond {
	case "none":
		m = nil
	case "jacobi":
		m = hcd.JacobiPreconditioner(g)
	case "steiner":
		d, derr := hcd.DecomposeFixedDegree(g, *k, *seed)
		if derr != nil {
			return derr
		}
		m, err = hcd.NewSteinerPreconditioner(d)
	case "subgraph":
		var res *hcd.SubgraphResult
		res, err = hcd.NewSubgraphPreconditioner(g, hcd.DefaultPlanarOptions(), g.N())
		if err == nil {
			m = res.P
		}
	case "tree":
		m, err = hcd.NewTreePreconditioner(g, hcd.MaxWeightTree, *seed)
	case "hierarchy":
		opt := hcd.DefaultHierarchyOptions()
		opt.SizeCap = *k
		opt.Seed = *seed
		var h *hcd.Hierarchy
		h, err = hcd.NewHierarchyCtx(ctx, g, opt)
		if err == nil {
			fmt.Printf("hierarchy levels: %v\n", h.LevelSizes())
			m = h
		}
	default:
		return fmt.Errorf("unknown preconditioner %q", *precond)
	}
	if err != nil {
		return err
	}
	buildTime := time.Since(buildStart)

	opt := hcd.DefaultSolveOptions()
	opt.Tol = *tol
	opt.Observer = observer
	solveStart := time.Now()
	var res hcd.SolveResult
	if *method == "chebyshev" {
		if m == nil {
			m = hcd.JacobiPreconditioner(g)
		}
		copt := hcd.DefaultChebyshevOptions(*chebIters)
		copt.Tol = *tol
		copt.Observer = observer
		cres, cerr := hcd.SolveChebyshevCtx(ctx, g, b, m, copt)
		if cerr != nil {
			return cerr
		}
		fmt.Printf("chebyshev spectrum estimate: [%.4g, %.4g]\n", cres.Lmin, cres.Lmax)
		res = cres.SolveResult
	} else {
		if m == nil {
			m = identity{n: g.N()}
		}
		res, err = hcd.SolvePCGCtx(ctx, g, b, m, opt)
		if err != nil {
			return err
		}
	}
	solveTime := time.Since(solveStart)

	fmt.Printf("graph: %s  n=%d m=%d\n", *graphSpec, g.N(), g.M())
	fmt.Printf("preconditioner: %s  build: %v\n", *precond, buildTime)
	fmt.Printf("outcome: %s  iterations: %d  solve: %v\n", res.Outcome, res.Iterations, solveTime)
	if len(res.Residuals) > 0 {
		fmt.Printf("residual: %.3g -> %.3g\n", res.Residuals[0], res.Residuals[len(res.Residuals)-1])
	}
	if *metrics {
		printMetrics(res.Metrics)
	}
	if lmin, lmax, eerr := hcd.EstimateSpectrum(res); eerr == nil && lmin > 0 {
		fmt.Printf("estimated spectrum of M⁻¹A: [%.4g, %.4g], κ ≈ %.4g\n", lmin, lmax, lmax/lmin)
	}
	if *history {
		for i, r := range res.Residuals {
			fmt.Printf("%d %.6e\n", i, r)
		}
	}
	printRegistry(o, *metrics)
	return nil
}

// printRegistry dumps the aggregated metric registry when -metrics is
// combined with an instrumented run (-trace/-listen created a registry).
func printRegistry(o *cli.Obs, metrics bool) {
	if !metrics || o.Registry == nil {
		return
	}
	fmt.Println("registry:")
	_ = o.Registry.WritePrometheus(os.Stdout)
}

func printMetrics(m hcd.SolveMetrics) {
	fmt.Printf("metrics: matvecs=%d precond-applies=%d iterations=%d\n",
		m.MatVecs, m.PrecondApplies, m.Iterations)
	fmt.Printf("metrics: setup=%v iterate=%v total=%v scratch-allocs=%d final-residual=%.3g\n",
		m.SetupTime, m.IterTime, m.TotalTime, m.ScratchAllocs, m.FinalResidual)
}

type identity struct{ n int }

func (i identity) Dim() int               { return i.n }
func (i identity) Apply(dst, r []float64) { copy(dst, r) }
