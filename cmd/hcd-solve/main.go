// Command hcd-solve solves a graph Laplacian system A·x = b on a generated
// workload with a selectable preconditioner and reports convergence. It is a
// thin front end over hcd.Do — the same request path the hcd-server solve
// handlers execute.
//
// Usage:
//
//	hcd-solve -graph oct:16 -precond hierarchy
//	hcd-solve -graph grid3d:20 -precond steiner -tol 1e-10
//	hcd-solve -graph grid3d:32 -precond hierarchy -metrics -timeout 30s
//	hcd-solve -graph grid3d:16 -resilient -trace trace.json
//	hcd-solve -graph grid3d:24 -listen :6060
//	hcd-solve -graph grid3d:20 -rhs 8 -metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"hcd"
	"hcd/internal/cli"
	"hcd/internal/obs"
)

func main() { cli.Main(run) }

func run() (err error) {
	graphSpec := flag.String("graph", "oct:12", "workload graph spec")
	precond := flag.String("precond", "hierarchy", "preconditioner: none | jacobi | steiner | subgraph | tree | hierarchy")
	method := flag.String("method", "pcg", "iteration: pcg | chebyshev")
	chebIters := flag.Int("cheb-iters", 120, "Chebyshev iteration count")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance")
	k := flag.Int("k", 4, "cluster size cap for steiner/hierarchy")
	shards := flag.Int("shards", 1, "shard-parallel clustering for steiner/hierarchy builds (1 = single-pass)")
	seed := flag.Int64("seed", 1, "random seed")
	rhs := flag.Int("rhs", 1, "right-hand sides to solve; >1 routes all columns through one block solve")
	history := flag.Bool("history", false, "print the full residual history")
	metrics := flag.Bool("metrics", false, "print per-solve metrics (matvecs, applies, phase times)")
	stream := flag.Bool("stream", false, "stream residual norms to stderr as the solve iterates")
	resilient := flag.Bool("resilient", false, "solve through the resilient fallback ladder (ignores -precond/-method)")
	timeout := flag.Duration("timeout", 0, "solve deadline (0 = none); an expired deadline cancels the iteration")
	o := cli.ObsFlags()
	flag.Parse()

	g, err := cli.BuildGraph(*graphSpec, *seed)
	if err != nil {
		return err
	}
	nrhs := *rhs
	if nrhs < 1 {
		nrhs = 1
	}
	B := make([][]float64, nrhs)
	for i := range B {
		B[i] = cli.MeanFreeRHS(g.N(), *seed+100+int64(i))
	}
	b := B[0]

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, err = o.Start(ctx)
	if err != nil {
		return err
	}
	if *metrics {
		ctx = o.EnsureRegistry(ctx)
	}
	defer func() {
		if cerr := o.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	var observer hcd.IterationObserver
	if o.Tracer != nil || o.Registry != nil || *stream {
		var ws hcd.IterationObserver
		if *stream {
			ws = obs.StreamResiduals(os.Stderr)
		}
		observer = obs.MultiObserver(
			obs.TraceResiduals(o.Tracer, "residual"),
			obs.HistogramResiduals(o.Registry, "hcd_solve_residual"),
			ws,
		)
	}

	if *resilient {
		ropt := hcd.DefaultResilienceOptions()
		ropt.Solve.Tol = *tol
		ropt.Solve.Observer = observer
		ropt.Hierarchy.SizeCap = *k
		ropt.Hierarchy.Seed = *seed
		solveStart := time.Now()
		resp, rerr := hcd.Do(ctx, g, hcd.SolveRequest{
			B: [][]float64{b}, Method: hcd.SolveMethodResilient, Resilience: ropt,
		})
		solveTime := time.Since(solveStart)
		fmt.Printf("graph: %s  n=%d m=%d\n", *graphSpec, g.N(), g.M())
		if len(resp.Resilience) == 0 {
			return rerr
		}
		rep := resp.Resilience[len(resp.Resilience)-1]
		fmt.Printf("ladder: %s\n", rep.String())
		if rerr != nil {
			return rerr
		}
		res := resp.Results[len(resp.Results)-1]
		fmt.Printf("rung: %s  recovered: %v\n", rep.Rung, rep.Recovered)
		fmt.Printf("outcome: %s  iterations: %d  solve: %v\n", res.Outcome, res.Iterations, solveTime)
		if *metrics {
			printMetrics(res.Metrics)
		}
		printRegistry(o, *metrics)
		return nil
	}

	// Build the preconditioner up front (rather than letting Do build it
	// from the spec) so build and solve wall times report separately and
	// the hierarchy's level profile can be printed.
	spec := hcd.PrecondSpec{Kind: hcd.PrecondKind(*precond), SizeCap: *k, Seed: *seed, Shards: *shards}
	buildStart := time.Now()
	m, err := hcd.NewPreconditioner(ctx, g, spec)
	if err != nil {
		return err
	}
	buildTime := time.Since(buildStart)
	if h, ok := m.(*hcd.Hierarchy); ok {
		fmt.Printf("hierarchy levels: %v\n", h.LevelSizes())
	}

	opt := hcd.DefaultSolveOptions()
	opt.Tol = *tol
	opt.Observer = observer
	req := hcd.SolveRequest{
		B: B, M: m, Options: opt,
		Precond: hcd.PrecondSpec{Kind: hcd.PrecondNone},
	}
	switch *method {
	case "chebyshev":
		if m == nil {
			req.M = hcd.JacobiPreconditioner(g)
		}
		req.Method = hcd.SolveMethodChebyshev
		copt := hcd.DefaultChebyshevOptions(*chebIters)
		copt.Tol = *tol
		copt.Observer = observer
		req.Chebyshev = copt
	case "pcg", "":
		req.Method = hcd.SolveMethodPCG
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	solveStart := time.Now()
	resp, err := hcd.Do(ctx, g, req)
	if err != nil {
		return err
	}
	solveTime := time.Since(solveStart)
	res := resp.Results[len(resp.Results)-1]
	if req.Method == hcd.SolveMethodChebyshev {
		fmt.Printf("chebyshev spectrum estimate: [%.4g, %.4g]\n", resp.Lmin, resp.Lmax)
	}

	fmt.Printf("graph: %s  n=%d m=%d\n", *graphSpec, g.N(), g.M())
	fmt.Printf("preconditioner: %s  build: %v\n", *precond, buildTime)
	if nrhs > 1 {
		// Multi-RHS: one block solve served every column — report each
		// column's own convergence plus the aggregate throughput.
		converged := 0
		for i, r := range resp.Results {
			if r.Converged {
				converged++
			}
			fmt.Printf("rhs %d: outcome: %s  iterations: %d  final-residual: %.3g\n",
				i, r.Outcome, r.Iterations, r.Metrics.FinalResidual)
			if *metrics {
				printMetrics(r.Metrics)
			}
		}
		fmt.Printf("converged: %d/%d  solve: %v  throughput: %.2f rhs/sec\n",
			converged, nrhs, solveTime, float64(nrhs)/solveTime.Seconds())
		printRegistry(o, *metrics)
		return nil
	}
	fmt.Printf("outcome: %s  iterations: %d  solve: %v\n", res.Outcome, res.Iterations, solveTime)
	if len(res.Residuals) > 0 {
		fmt.Printf("residual: %.3g -> %.3g\n", res.Residuals[0], res.Residuals[len(res.Residuals)-1])
	}
	if *metrics {
		printMetrics(res.Metrics)
	}
	if lmin, lmax, eerr := hcd.EstimateSpectrum(res); eerr == nil && lmin > 0 {
		fmt.Printf("estimated spectrum of M⁻¹A: [%.4g, %.4g], κ ≈ %.4g\n", lmin, lmax, lmax/lmin)
	}
	if *history {
		for i, r := range res.Residuals {
			fmt.Printf("%d %.6e\n", i, r)
		}
	}
	printRegistry(o, *metrics)
	return nil
}

// printRegistry dumps the aggregated metric registry when -metrics is
// combined with an instrumented run (-trace/-listen created a registry).
func printRegistry(o *cli.Obs, metrics bool) {
	if !metrics || o.Registry == nil {
		return
	}
	fmt.Println("registry:")
	_ = o.Registry.WritePrometheus(os.Stdout)
}

func printMetrics(m hcd.SolveMetrics) {
	fmt.Printf("metrics: matvecs=%d precond-applies=%d iterations=%d\n",
		m.MatVecs, m.PrecondApplies, m.Iterations)
	fmt.Printf("metrics: setup=%v iterate=%v total=%v scratch-allocs=%d final-residual=%.3g\n",
		m.SetupTime, m.IterTime, m.TotalTime, m.ScratchAllocs, m.FinalResidual)
}
