// Command hcd-fig6 regenerates Figure 6 of the paper: the PCG residual
// norm ‖Axᵢ − b‖₂ per iteration for a Steiner preconditioner vs a subgraph
// preconditioner on a weighted 3D grid, with both preconditioners built at
// roughly the same system reduction factor (≈ 4 in the paper).
//
// Output: three columns (iteration, steiner residual, subgraph residual),
// normalized to start at 1 like the paper's plot.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"hcd"
	"hcd/internal/cli"
)

func main() {
	side := flag.Int("side", 20, "3D grid side (n = side³)")
	iters := flag.Int("iters", 40, "iterations to plot (the paper shows 40)")
	seed := flag.Int64("seed", 1, "random seed")
	o := cli.ObsFlags()
	flag.Parse()

	ctx, err := o.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if cerr := o.Close(); cerr != nil {
			log.Fatal(cerr)
		}
	}()

	opt := hcd.DefaultOCTOptions()
	opt.Seed = *seed
	g := hcd.OCT3D(*side, *side, *side, opt)
	b := cli.MeanFreeRHS(g.N(), *seed+7)

	// Steiner preconditioner: Section 3.1 clustering at size cap 4 gives a
	// reduction factor ≈ 4 in the quotient system.
	dres, err := hcd.DecomposeCtx(context.Background(), g, hcd.DecomposeOptions{
		Method: hcd.MethodFixedDegree, SizeCap: 4, Seed: *seed, SkipReport: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	d := dres.D
	sp, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		log.Fatal(err)
	}
	steinerRed := float64(g.N()) / float64(d.Count)

	// Subgraph preconditioner tuned so its partial-Cholesky core matches the
	// Steiner quotient size (the paper's "roughly the same reduction factor"
	// protocol), via bisection on the off-tree edge budget.
	sub, err := hcd.NewSubgraphPreconditionerMatched(g, steinerRed, *seed)
	if err != nil {
		log.Fatal(err)
	}
	subRed := float64(g.N()) / float64(sub.CoreSize)

	solve := hcd.DefaultSolveOptions()
	solve.Tol = 1e-16 // run the full iteration budget, like the figure
	solve.MaxIter = *iters
	sres, err := hcd.SolvePCGCtx(ctx, g, b, sp, solve)
	if err != nil {
		log.Fatal(err)
	}
	gres, err := hcd.SolvePCGCtx(ctx, g, b, sub.P, solve)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# Figure 6 reproduction: weighted 3D grid %d^3 (n=%d)\n", *side, g.N())
	fmt.Printf("# steiner reduction=%.2f (quotient %d), subgraph reduction=%.2f (core %d)\n",
		steinerRed, d.Count, subRed, sub.CoreSize)
	fmt.Printf("%-6s %-14s %-14s\n", "iter", "steiner", "subgraph")
	for i := 0; i <= *iters; i++ {
		fmt.Printf("%-6d %-14.6e %-14.6e\n", i, at(sres.Residuals, i), at(gres.Residuals, i))
	}
}

// at returns the normalized residual at iteration i, holding the last value
// once a solver has converged early.
func at(hist []float64, i int) float64 {
	if len(hist) == 0 {
		return 0
	}
	if i >= len(hist) {
		i = len(hist) - 1
	}
	return hist[i] / hist[0]
}
