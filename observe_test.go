package hcd_test

// Integration tests for the observability layer: metric-registry invariance
// under parallelism, span-tree well-formedness across cancellation and
// injected faults, trace-export nesting of a resilient solve, and the
// residual-streaming observers.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"

	"hcd"
	"hcd/internal/faultinject"
	"hcd/internal/obs"
)

// meanFreeRHS builds a deterministic right-hand side orthogonal to the
// constant vector (Laplacian systems are singular along 1).
func meanFreeRHS(n int) []float64 {
	b := make([]float64, n)
	s := 0.0
	for i := range b {
		b[i] = float64((i*7919)%13) - 6
		s += b[i]
	}
	for i := range b {
		b[i] -= s / float64(n)
	}
	return b
}

// decomposeCounters runs one instrumented DecomposeCtx build at the given
// GOMAXPROCS and returns the registry snapshot with the legitimately
// schedule-dependent series (wall times, scratch allocations) removed.
func decomposeCounters(t *testing.T, procs int) map[string]float64 {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	reg := hcd.NewMetricRegistry()
	ctx := hcd.WithMetricRegistry(context.Background(), reg)
	g := hcd.Grid3D(8, 8, 8, hcd.LognormalWeights(1), 1)
	if _, err := hcd.DecomposeCtx(ctx, g, hcd.DefaultDecomposeOptions(hcd.MethodFixedDegree)); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for k, v := range reg.Snapshot() {
		if strings.Contains(k, "_ns_total") || strings.Contains(k, "_allocs_total") {
			continue
		}
		out[k] = v
	}
	return out
}

// TestRegistryCountersGOMAXPROCSInvariant pins the exact-commutativity claim:
// the aggregated counters of a parallel build/evaluate (stage runs, cert
// cores, stubs, subsets, cluster counts, quality gauges) are identical no
// matter how many workers the run fanned across.
func TestRegistryCountersGOMAXPROCSInvariant(t *testing.T) {
	serial := decomposeCounters(t, 1)
	parallel := decomposeCounters(t, 4)
	if len(serial) == 0 {
		t.Fatal("no registry series published by the build")
	}
	for k, v := range serial {
		if pv, ok := parallel[k]; !ok || pv != v {
			t.Errorf("%s: serial %v, parallel %v", k, v, pv)
		}
	}
	for k := range parallel {
		if _, ok := serial[k]; !ok {
			t.Errorf("%s: present only in the parallel run", k)
		}
	}
	if serial["hcd_cert_cores_total"] == 0 || serial["hcd_evaluate_total"] != 1 {
		t.Errorf("expected cert/evaluate series, got %v", serial)
	}
}

func TestSpanTreeClosedAfterCancelledBuild(t *testing.T) {
	tr := hcd.NewTracer()
	ctx, cancel := context.WithCancel(hcd.WithTracer(context.Background(), tr))
	cancel()
	g := hcd.Grid2D(30, 30, nil, 1)
	if _, err := hcd.DecomposeCtx(ctx, g, hcd.DefaultDecomposeOptions(hcd.MethodFixedDegree)); err == nil {
		t.Fatal("cancelled build reported success")
	}
	if _, err := hcd.SolvePCGCtx(ctx, g, meanFreeRHS(g.N()), nil, hcd.DefaultSolveOptions()); err != nil {
		t.Fatalf("cancelled solve must return a result, not an error: %v", err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("span tree malformed after cancellation: %v", err)
	}
}

func TestSpanTreeClosedAfterInjectedStageFault(t *testing.T) {
	tr := hcd.NewTracer()
	ctx := hcd.WithTracer(context.Background(), tr)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.StageFail: {OnHit: 1, Count: 1},
	})
	g := hcd.Grid2D(10, 10, nil, 1)
	_, err := hcd.DecomposeCtx(ctx, g, hcd.DefaultDecomposeOptions(hcd.MethodFixedDegree))
	restore()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want the injected stage fault", err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("span tree malformed after stage fault: %v", err)
	}
}

// TestResilientTraceNesting runs a fault-injected resilient solve under a
// tracer and asserts the exported span tree has the documented shape: ladder
// rungs nest under resilient/solve, the hierarchy build and the solver
// attempts nest under their rung, and the fault fire appears as an instant
// event. The export must be valid Chrome trace-event JSON.
func TestResilientTraceNesting(t *testing.T) {
	tr := hcd.NewTracer()
	reg := hcd.NewMetricRegistry()
	ctx := hcd.WithMetricRegistry(hcd.WithTracer(context.Background(), tr), reg)
	faultinject.SetObserver(func(point string) { tr.Instant("fault/" + point) })
	defer faultinject.SetObserver(nil)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.MatvecNaN: {OnHit: 1, Count: 2},
	})
	g := hcd.Grid2D(12, 12, nil, 1)
	res, rep, err := hcd.SolveResilient(ctx, g, meanFreeRHS(g.N()), hcd.DefaultResilienceOptions())
	restore()
	if err != nil || !res.Converged {
		t.Fatalf("ladder failed: %v (report %s)", err, rep)
	}
	if !rep.Recovered {
		t.Fatalf("expected a recovery, report %s", rep)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("span tree malformed: %v", err)
	}

	spans := tr.Spans()
	byID := map[uint64]obs.SpanInfo{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	parentName := func(s obs.SpanInfo) string {
		if p, ok := byID[s.Parent]; ok {
			return p.Name
		}
		return ""
	}
	var root, rungs, builds, solves, attempts int
	for _, s := range spans {
		switch {
		case s.Name == "resilient/solve":
			root++
			if s.Parent != 0 {
				t.Errorf("resilient/solve has parent %d, want root", s.Parent)
			}
		case strings.HasPrefix(s.Name, "resilient/rung/"):
			rungs++
			if parentName(s) != "resilient/solve" {
				t.Errorf("rung %s parented by %q, want resilient/solve", s.Name, parentName(s))
			}
		case s.Name == "hierarchy/build":
			builds++
			if !strings.HasPrefix(parentName(s), "resilient/rung/") {
				t.Errorf("hierarchy/build parented by %q, want a rung", parentName(s))
			}
		case s.Name == "solve/pcg":
			solves++
			if !strings.HasPrefix(parentName(s), "resilient/rung/") {
				t.Errorf("solve/pcg parented by %q, want a rung", parentName(s))
			}
		case s.Name == "solve/attempt":
			attempts++
			if pn := parentName(s); pn != "solve/pcg" && pn != "solve/chebyshev" {
				t.Errorf("solve/attempt parented by %q, want a solver core", pn)
			}
		}
	}
	if root != 1 || rungs < 2 || builds < 1 || solves < 2 || attempts < 2 {
		t.Fatalf("span census root=%d rungs=%d builds=%d solves=%d attempts=%d; want a multi-rung tree", root, rungs, builds, solves, attempts)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	foundFault := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" && ev.Name == "fault/"+faultinject.MatvecNaN {
			foundFault = true
		}
	}
	if !foundFault {
		t.Fatal("fault fire missing from the trace as an instant event")
	}

	// The registry aggregated the same run: the ladder and solver published.
	snap := reg.Snapshot()
	if snap["hcd_resilient_solves_total"] != 1 || snap["hcd_resilient_recovered_total"] != 1 {
		t.Errorf("resilient series = %v", snap)
	}
	if snap["hcd_solve_total"] < 2 {
		t.Errorf("hcd_solve_total = %v, want ≥ 2 (failed rung + recovery)", snap["hcd_solve_total"])
	}
}

// TestObserverMatchesResiduals pins the streaming contract: the observer
// receives exactly the post-initial residual history, in order, with 1-based
// iteration numbers.
func TestObserverMatchesResiduals(t *testing.T) {
	g := hcd.Grid2D(16, 16, nil, 1)
	b := meanFreeRHS(g.N())
	var iters []int
	var seen []float64
	opt := hcd.DefaultSolveOptions()
	opt.Observer = hcd.ObserverFunc(func(i int, r float64) {
		iters = append(iters, i)
		seen = append(seen, r)
	})
	res, err := hcd.SolvePCGCtx(context.Background(), g, b, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if len(seen) != len(res.Residuals)-1 {
		t.Fatalf("observer saw %d residuals, history has %d (+initial)", len(seen), len(res.Residuals))
	}
	for i, r := range seen {
		if iters[i] != i+1 {
			t.Fatalf("iteration numbering %v", iters)
		}
		if r != res.Residuals[i+1] {
			t.Fatalf("residual %d: observed %v, history %v", i+1, r, res.Residuals[i+1])
		}
	}
}

// TestChebyshevObserver pins the ChebyshevOptions.Observer passthrough.
func TestChebyshevObserver(t *testing.T) {
	g := hcd.Grid2D(12, 12, nil, 1)
	b := meanFreeRHS(g.N())
	n := 0
	copt := hcd.DefaultChebyshevOptions(30)
	copt.Observer = hcd.ObserverFunc(func(int, float64) { n++ })
	res, err := hcd.SolveChebyshevCtx(context.Background(), g, b, hcd.JacobiPreconditioner(g), copt)
	if err != nil {
		t.Fatal(err)
	}
	if n != res.Iterations {
		t.Fatalf("observer saw %d iterations, solve ran %d", n, res.Iterations)
	}
}
